/**
 * @file
 * sevf_boot command-line: help/flag parity (the regression ISSUE 4
 * fixed — --help had drifted from the parser), both --flag value and
 * --flag=value forms, every enum value, and error reporting.
 */
#include <gtest/gtest.h>

#include "tools/sevf_boot_cli.h"

namespace sevf::tools {
namespace {

TEST(BootCli, EveryFlagAppearsInHelp)
{
    std::string help = usageText("sevf_boot");
    for (const BootFlag &f : bootFlags()) {
        EXPECT_NE(help.find(f.name), std::string::npos)
            << f.name << " missing from --help";
        if (f.value_hint != nullptr) {
            EXPECT_NE(help.find(f.value_hint), std::string::npos)
                << f.name << " value hint missing from --help";
        }
    }
}

TEST(BootCli, EveryFlagIsParseable)
{
    // Parity in the other direction: every flag in the table must be
    // accepted by the parser (with a plausible value where required).
    for (const BootFlag &f : bootFlags()) {
        std::vector<std::string> args{f.name};
        if (f.value_hint != nullptr) {
            std::string hint = f.value_hint;
            // First alternative of "a|b|c", else a number.
            std::string value = hint.substr(0, hint.find('|'));
            if (value == "N" || value == "BYTES" || value == "0..1") {
                value = "1";
            } else if (value == "FILE") {
                value = "/dev/null";
            } else if (value == "DIR") {
                value = "/tmp";
            }
            args.push_back(value);
        }
        Result<BootOptions> parsed = parseBootArgs(args);
        EXPECT_TRUE(parsed.isOk())
            << f.name << ": " << parsed.status().toString();
    }
}

TEST(BootCli, DefaultsMatchLaunchRequestDefaults)
{
    Result<BootOptions> parsed = parseBootArgs({});
    ASSERT_TRUE(parsed.isOk());
    core::LaunchRequest defaults;
    EXPECT_EQ(parsed->strategy, core::StrategyKind::kSeveriFastBz);
    EXPECT_EQ(parsed->request.kernel, defaults.kernel);
    EXPECT_EQ(parsed->request.sev_mode, defaults.sev_mode);
    EXPECT_EQ(parsed->request.attest, defaults.attest);
    EXPECT_FALSE(parsed->json);
    EXPECT_FALSE(parsed->help);
    EXPECT_TRUE(parsed->trace_out.empty());
    EXPECT_TRUE(parsed->metrics_out.empty());
    EXPECT_TRUE(parsed->request.use_template_cache);
    EXPECT_TRUE(parsed->cache_dir.empty());
    EXPECT_EQ(parsed->cache_bytes, 0u);
    EXPECT_FALSE(parsed->cache_stats);
}

TEST(BootCli, SpaceAndEqualsFormsAgree)
{
    Result<BootOptions> spaced =
        parseBootArgs({"--strategy", "qemu", "--vcpus", "4"});
    Result<BootOptions> inlined =
        parseBootArgs({"--strategy=qemu", "--vcpus=4"});
    ASSERT_TRUE(spaced.isOk());
    ASSERT_TRUE(inlined.isOk());
    EXPECT_EQ(spaced->strategy, inlined->strategy);
    EXPECT_EQ(spaced->request.vm.vcpus, 4u);
    EXPECT_EQ(inlined->request.vm.vcpus, 4u);
}

TEST(BootCli, FullFlagSetRoundTrips)
{
    Result<BootOptions> parsed = parseBootArgs(
        {"--strategy", "severifast-vmlinux", "--kernel", "lupine", "--mode",
         "sev-es", "--vcpus", "2", "--scale", "0.5", "--seed", "7",
         "--threads", "3", "--no-hugepages", "--no-attest", "--no-oob-hash",
         "--kernel-codec", "lzss", "--initrd-codec", "gzip",
         "--verifier-size", "8192", "--kaslr", "--share-key", "--no-cache",
         "--cache-dir", "/tmp/tmpl", "--cache-bytes", "4096",
         "--cache-stats", "--json", "--trace-out", "t.json",
         "--metrics-out", "m.prom"});
    ASSERT_TRUE(parsed.isOk()) << parsed.status().toString();
    const BootOptions &o = *parsed;
    EXPECT_EQ(o.strategy, core::StrategyKind::kSeveriFastVmlinux);
    EXPECT_EQ(o.request.kernel, workload::KernelConfig::kLupine);
    EXPECT_EQ(o.request.sev_mode, memory::SevMode::kSevEs);
    EXPECT_EQ(o.request.vm.vcpus, 2u);
    EXPECT_DOUBLE_EQ(o.request.scale, 0.5);
    EXPECT_EQ(o.request.seed, 7u);
    EXPECT_EQ(o.request.host_threads, 3u);
    EXPECT_FALSE(o.request.vm.hugepages);
    EXPECT_FALSE(o.request.attest);
    EXPECT_FALSE(o.request.out_of_band_hashing);
    EXPECT_EQ(o.request.kernel_codec, compress::CodecKind::kLzss);
    EXPECT_EQ(o.request.initrd_codec, compress::CodecKind::kGzipLite);
    EXPECT_EQ(o.request.verifier_size, 8192u);
    EXPECT_TRUE(o.request.guest_kaslr);
    EXPECT_TRUE(o.request.share_platform_key);
    EXPECT_FALSE(o.request.use_template_cache);
    EXPECT_EQ(o.cache_dir, "/tmp/tmpl");
    EXPECT_EQ(o.cache_bytes, 4096u);
    EXPECT_TRUE(o.cache_stats);
    EXPECT_TRUE(o.json);
    EXPECT_EQ(o.trace_out, "t.json");
    EXPECT_EQ(o.metrics_out, "m.prom");
}

TEST(BootCli, FaultAndRetryFlagsParse)
{
    Result<BootOptions> parsed = parseBootArgs(
        {"--fault-plan", "seed=7;psp:p=0.25;disk-read:nth=2",
         "--retry-max", "5", "--retry-base-us", "250",
         "--retry-jitter", "0.2"});
    ASSERT_TRUE(parsed.isOk()) << parsed.status().toString();
    EXPECT_EQ(parsed->fault_plan, "seed=7;psp:p=0.25;disk-read:nth=2");
    EXPECT_EQ(parsed->retry.max_attempts, 5u);
    EXPECT_EQ(parsed->retry.base_delay_ns, 250'000u);
    EXPECT_DOUBLE_EQ(parsed->retry.jitter, 0.2);

    // Defaults when the flags are absent: the documented policy table
    // (docs/RELIABILITY.md) — 3 attempts, 100 us base, 0.1 jitter.
    Result<BootOptions> defaults = parseBootArgs({});
    ASSERT_TRUE(defaults.isOk());
    EXPECT_TRUE(defaults->fault_plan.empty());
    EXPECT_EQ(defaults->retry.max_attempts, 3u);
    EXPECT_EQ(defaults->retry.base_delay_ns, 100'000u);
    EXPECT_DOUBLE_EQ(defaults->retry.jitter, 0.1);
}

TEST(BootCli, CacheStatsLineCarriesDiskHealthCounters)
{
    // The --cache-stats line is how an operator tells a dying disk tier
    // (disk_errors/quarantined climbing) from a merely cold cache
    // (misses climbing). Freeze the exact rendering.
    cache::TemplateCache::Stats s;
    s.hits = 3;
    s.misses = 2;
    s.inserts = 2;
    s.evictions = 1;
    s.entries = 1;
    s.bytes = 4096;
    s.disk_errors = 5;
    s.quarantined = 1;
    s.poisoned = 2;
    EXPECT_EQ(renderCacheStats(s),
              "cache: hits=3 misses=2 inserts=2 evictions=1 entries=1 "
              "bytes=4096 disk_errors=5 quarantined=1 poisoned=2");
    EXPECT_EQ(renderCacheStats(cache::TemplateCache::Stats{}),
              "cache: hits=0 misses=0 inserts=0 evictions=0 entries=0 "
              "bytes=0 disk_errors=0 quarantined=0 poisoned=0");
}

TEST(BootCli, RejectsMalformedNumbers)
{
    // Regression: std::atoi silently turned "--threads=abc" into 0
    // ("use the platform knob") and wrapped negatives through the
    // unsigned cast. Every numeric flag must now reject garbage with a
    // usage error naming the flag.
    for (const char *arg :
         {"--vcpus=abc", "--vcpus=-1", "--vcpus=4294967296",
          "--vcpus=12x", "--vcpus=", "--vcpus= 4",
          "--threads=abc", "--threads=-2", "--threads=1e3",
          "--retry-max=abc", "--retry-max=-1",
          "--retry-max=99999999999",
          "--seed=-7", "--seed=18446744073709551616",
          "--verifier-size=4k", "--cache-bytes=1GiB",
          "--retry-base-us=abc",
          "--scale=huge", "--scale=-0.5", "--scale=1.5", "--scale=nan",
          "--retry-jitter=2", "--retry-jitter=-0.1"}) {
        Result<BootOptions> parsed = parseBootArgs({arg});
        EXPECT_FALSE(parsed.isOk()) << arg << " should be rejected";
    }
    Result<BootOptions> bad = parseBootArgs({"--threads=abc"});
    ASSERT_FALSE(bad.isOk());
    EXPECT_EQ(bad.status().code(), ErrorCode::kInvalidArgument);
    EXPECT_NE(bad.status().message().find("--threads"),
              std::string::npos);
}

TEST(BootCli, AcceptsBoundaryNumbers)
{
    Result<BootOptions> max32 = parseBootArgs({"--vcpus=4294967295"});
    ASSERT_TRUE(max32.isOk()) << max32.status().toString();
    EXPECT_EQ(max32->request.vm.vcpus, 4294967295u);

    Result<BootOptions> max64 =
        parseBootArgs({"--seed=18446744073709551615"});
    ASSERT_TRUE(max64.isOk()) << max64.status().toString();
    EXPECT_EQ(max64->request.seed, 18446744073709551615ull);

    Result<BootOptions> zero = parseBootArgs({"--threads=0"});
    ASSERT_TRUE(zero.isOk());
    EXPECT_EQ(zero->request.host_threads, 0u);

    Result<BootOptions> edges =
        parseBootArgs({"--retry-jitter=1", "--scale=1.0"});
    ASSERT_TRUE(edges.isOk());
    EXPECT_DOUBLE_EQ(edges->retry.jitter, 1.0);
    EXPECT_DOUBLE_EQ(edges->request.scale, 1.0);
}

TEST(BootCli, RejectsBadInput)
{
    EXPECT_FALSE(parseBootArgs({"--no-such-flag"}).isOk());
    EXPECT_FALSE(parseBootArgs({"--strategy", "xen"}).isOk());
    EXPECT_FALSE(parseBootArgs({"--kernel-codec", "zstd"}).isOk());
    EXPECT_FALSE(parseBootArgs({"--vcpus"}).isOk()); // missing value
    EXPECT_FALSE(parseBootArgs({"--json=1"}).isOk()); // boolean with value
    Result<BootOptions> bad = parseBootArgs({"--no-such-flag"});
    EXPECT_NE(bad.status().message().find("--no-such-flag"),
              std::string::npos);
}

} // namespace
} // namespace sevf::tools
