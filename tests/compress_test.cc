/**
 * @file
 * Compression codec tests: LZ4 block-format conformance pieces, LZSS,
 * frame handling, and parameterized round-trip properties across codecs
 * and data shapes.
 */
#include <gtest/gtest.h>

#include <string>
#include <tuple>

#include "base/bytes.h"
#include "base/rng.h"
#include "compress/codec.h"
#include "compress/lz4.h"
#include "compress/lzss.h"

namespace sevf::compress {
namespace {

ByteVec
repeatPattern(std::string_view pattern, std::size_t total)
{
    ByteVec out;
    out.reserve(total);
    while (out.size() < total) {
        std::size_t take = std::min(pattern.size(), total - out.size());
        out.insert(out.end(), pattern.begin(), pattern.begin() + take);
    }
    return out;
}

ByteVec
randomBytes(std::size_t n, u64 seed)
{
    ByteVec out(n);
    Rng rng(seed);
    rng.fill(out);
    return out;
}

/** Kernel-ish data: compressible structure with incompressible islands. */
ByteVec
kernelLike(std::size_t n, u64 seed)
{
    ByteVec out;
    out.reserve(n);
    Rng rng(seed);
    while (out.size() < n) {
        if (rng.nextDouble() < 0.7) {
            // Repetitive "code" region.
            ByteVec chunk = repeatPattern("\x48\x89\xe5\x55\x41\x57 mov rbp",
                                          128 + rng.nextBelow(512));
            out.insert(out.end(), chunk.begin(), chunk.end());
        } else {
            ByteVec chunk = randomBytes(64 + rng.nextBelow(256), rng.next());
            out.insert(out.end(), chunk.begin(), chunk.end());
        }
    }
    out.resize(n);
    return out;
}

// ------------------------------------------------- parameterized roundtrip

using RoundTripParam = std::tuple<CodecKind, std::string>;

class CodecRoundTrip
    : public ::testing::TestWithParam<RoundTripParam>
{
  protected:
    ByteVec
    makeData(const std::string &shape) const
    {
        if (shape == "empty") return {};
        if (shape == "one") return {0x42};
        if (shape == "small") return toBytes("hello, SEV world");
        if (shape == "zeros") return ByteVec(100000, 0);
        if (shape == "pattern") return repeatPattern("abcabcabd", 70000);
        if (shape == "random") return randomBytes(50000, 99);
        if (shape == "kernel") return kernelLike(300000, 7);
        if (shape == "boundary4096") return randomBytes(4096, 3);
        if (shape == "boundary4097") return kernelLike(4097, 3);
        if (shape == "tiny12") return toBytes("123456789012");
        if (shape == "tiny13") return toBytes("aaaaaaaaaaaaa");
        return {};
    }
};

TEST_P(CodecRoundTrip, RoundTrips)
{
    auto [kind, shape] = GetParam();
    const Codec &codec = codecFor(kind);
    ByteVec data = makeData(shape);
    ByteVec stream = codec.compress(data);
    Result<ByteVec> back = codec.decompress(stream);
    ASSERT_TRUE(back.isOk()) << back.status().toString();
    EXPECT_EQ(*back, data);

    // Frame metadata is self-describing.
    Result<u64> size = Codec::decompressedSize(stream);
    ASSERT_TRUE(size.isOk());
    EXPECT_EQ(*size, data.size());
    Result<CodecKind> k = Codec::streamKind(stream);
    ASSERT_TRUE(k.isOk());
    EXPECT_EQ(*k, kind);
}

INSTANTIATE_TEST_SUITE_P(
    AllCodecsAllShapes, CodecRoundTrip,
    ::testing::Combine(
        ::testing::Values(CodecKind::kNone, CodecKind::kLz4,
                          CodecKind::kLzss, CodecKind::kGzipLite),
        ::testing::Values("empty", "one", "small", "zeros", "pattern",
                          "random", "kernel", "boundary4096",
                          "boundary4097", "tiny12", "tiny13")),
    [](const ::testing::TestParamInfo<RoundTripParam> &info) {
        std::string name = std::string(codecName(std::get<0>(info.param))) +
                           "_" + std::get<1>(info.param);
        for (char &c : name) {
            if (c == '-') {
                c = '_';
            }
        }
        return name;
    });

// ------------------------------------------------------------- ratios

TEST(CompressRatios, Lz4CompressesKernelLikeData)
{
    ByteVec data = kernelLike(1 << 20, 11);
    ByteVec lz4 = codecFor(CodecKind::kLz4).compress(data);
    EXPECT_LT(lz4.size(), data.size() / 2)
        << "LZ4 should at least halve kernel-like data";
}

TEST(CompressRatios, RandomDataDoesNotExplode)
{
    ByteVec data = randomBytes(100000, 5);
    ByteVec lz4 = codecFor(CodecKind::kLz4).compress(data);
    ByteVec lzss = codecFor(CodecKind::kLzss).compress(data);
    // Worst-case expansion stays small (LZ4 spec bound is ~0.4% + 12).
    EXPECT_LT(lz4.size(), data.size() + data.size() / 16 + 64);
    EXPECT_LT(lzss.size(), data.size() + data.size() / 8 + 64);
}

TEST(CompressRatios, ZerosCompressMassively)
{
    ByteVec data(1 << 20, 0);
    EXPECT_LT(codecFor(CodecKind::kLz4).compress(data).size(), 8192u);
    EXPECT_LT(codecFor(CodecKind::kLzss).compress(data).size(), 300000u);
}

// ------------------------------------------------------------ gzip-lite

TEST(GzipLite, BeatsLz4OnRatioLosesOnNothingElse)
{
    // gzip-class codecs trade decode speed for density: on kernel-like
    // data the gzip-lite stream must be smaller than LZ4's.
    ByteVec data = kernelLike(1 << 20, 33);
    u64 lz4 = codecFor(CodecKind::kLz4).compress(data).size();
    u64 gz = codecFor(CodecKind::kGzipLite).compress(data).size();
    EXPECT_LT(gz, lz4);
}

TEST(GzipLite, HandlesLongRepeats)
{
    // Matches cap at 130 bytes; a 1 MiB run must chain many of them.
    ByteVec data(1 << 20, 0x41);
    const Codec &gz = codecFor(CodecKind::kGzipLite);
    ByteVec stream = gz.compress(data);
    EXPECT_LT(stream.size(), 10000u);
    Result<ByteVec> back = gz.decompress(stream);
    ASSERT_TRUE(back.isOk());
    EXPECT_EQ(*back, data);
}

TEST(GzipLite, RejectsCorruptHuffmanHeader)
{
    ByteVec stream = codecFor(CodecKind::kGzipLite)
                         .compress(toBytes("some compressible data data"));
    // Corrupt the code-length table region (right after the 16B frame).
    for (int i = 16; i < 40; ++i) {
        stream[i] = 0xff;
    }
    Result<ByteVec> back =
        codecFor(CodecKind::kGzipLite).decompress(stream);
    if (back.isOk()) {
        EXPECT_NE(*back, toBytes("some compressible data data"));
    }
}

// ------------------------------------------------------------- lz4 spec

TEST(Lz4Block, LiteralOnlyBlockDecodes)
{
    // Hand-built block: token=0x50 (5 literals, no match), "hello".
    ByteVec block = {0x50, 'h', 'e', 'l', 'l', 'o'};
    Result<ByteVec> out = Lz4Codec::decompressBlock(block, 5);
    ASSERT_TRUE(out.isOk());
    EXPECT_EQ(*out, toBytes("hello"));
}

TEST(Lz4Block, MatchWithOverlapDecodes)
{
    // "abc" then a match of length 9 at offset 3 => "abcabcabcabc".
    // token = lit 3, matchlen code 9-4=5 => 0x35; offset 3 LE.
    ByteVec block = {0x35, 'a', 'b', 'c', 0x03, 0x00};
    Result<ByteVec> out = Lz4Codec::decompressBlock(block, 12);
    ASSERT_TRUE(out.isOk());
    EXPECT_EQ(*out, toBytes("abcabcabcabc"));
}

TEST(Lz4Block, ExtendedLengthsDecode)
{
    // 20 literals: token 0xf0, ext byte 5.
    ByteVec block;
    block.push_back(0xf0);
    block.push_back(5);
    for (int i = 0; i < 20; ++i) {
        block.push_back(static_cast<u8>('A' + i));
    }
    Result<ByteVec> out = Lz4Codec::decompressBlock(block, 20);
    ASSERT_TRUE(out.isOk());
    EXPECT_EQ(out->size(), 20u);
    EXPECT_EQ((*out)[19], 'T');
}

TEST(Lz4Block, RejectsBadOffset)
{
    // Match offset 10 with only 3 bytes of output so far.
    ByteVec block = {0x35, 'a', 'b', 'c', 0x0a, 0x00};
    EXPECT_FALSE(Lz4Codec::decompressBlock(block, 12).isOk());
}

TEST(Lz4Block, RejectsZeroOffset)
{
    ByteVec block = {0x35, 'a', 'b', 'c', 0x00, 0x00};
    EXPECT_FALSE(Lz4Codec::decompressBlock(block, 12).isOk());
}

TEST(Lz4Block, RejectsTruncatedLiterals)
{
    ByteVec block = {0x50, 'h', 'e'};
    EXPECT_FALSE(Lz4Codec::decompressBlock(block, 5).isOk());
}

TEST(Lz4Block, RejectsSizeMismatch)
{
    ByteVec block = {0x50, 'h', 'e', 'l', 'l', 'o'};
    EXPECT_FALSE(Lz4Codec::decompressBlock(block, 9).isOk());
    EXPECT_FALSE(Lz4Codec::decompressBlock(block, 3).isOk());
}

// --------------------------------------------------------- frame errors

TEST(Frame, RejectsBadMagic)
{
    ByteVec stream = codecFor(CodecKind::kLz4).compress(toBytes("data"));
    stream[0] = 'X';
    EXPECT_FALSE(codecFor(CodecKind::kLz4).decompress(stream).isOk());
}

TEST(Frame, RejectsWrongCodec)
{
    ByteVec stream = codecFor(CodecKind::kLz4).compress(toBytes("data"));
    EXPECT_FALSE(codecFor(CodecKind::kLzss).decompress(stream).isOk());
    EXPECT_FALSE(codecFor(CodecKind::kNone).decompress(stream).isOk());
}

TEST(Frame, RejectsTruncatedHeader)
{
    ByteVec stream = codecFor(CodecKind::kLz4).compress(toBytes("data"));
    stream.resize(6);
    EXPECT_FALSE(Codec::decompressedSize(stream).isOk());
}

TEST(Frame, RejectsUnknownKind)
{
    ByteVec stream = codecFor(CodecKind::kNone).compress(toBytes("x"));
    stream[4] = 0x7f; // kind byte
    EXPECT_FALSE(Codec::streamKind(stream).isOk());
}

TEST(Frame, CorruptPayloadDetected)
{
    ByteVec data = kernelLike(50000, 21);
    ByteVec stream = codecFor(CodecKind::kLz4).compress(data);
    // Truncate the payload: decoder must fail, not crash.
    ByteVec cut(stream.begin(), stream.begin() + stream.size() / 2);
    EXPECT_FALSE(codecFor(CodecKind::kLz4).decompress(cut).isOk());
}

} // namespace
} // namespace sevf::compress
