/**
 * @file
 * End-to-end strategy tests at small workload scale: all five
 * strategies boot, produce sane traces/phases, attest where expected,
 * and preserve the paper's qualitative ordering.
 */
#include <gtest/gtest.h>

#include "core/launch.h"
#include "core/report.h"
#include "workload/synthetic.h"

namespace sevf::core {
namespace {

constexpr double kScale = 1.0 / 32.0;

LaunchRequest
smallRequest(workload::KernelConfig kernel)
{
    LaunchRequest req;
    req.kernel = kernel;
    req.scale = kScale;
    return req;
}

class StrategyTest : public ::testing::TestWithParam<StrategyKind>
{
  protected:
    StrategyTest() : platform_(sim::CostParams::deterministic()) {}
    Platform platform_;
};

TEST_P(StrategyTest, LaunchesAwsKernel)
{
    std::unique_ptr<BootStrategy> strategy = makeStrategy(GetParam());
    Result<LaunchResult> result =
        strategy->launch(platform_, smallRequest(workload::KernelConfig::kAws));
    ASSERT_TRUE(result.isOk()) << result.status().toString();

    EXPECT_GT(result->totalTime(), sim::Duration::zero());
    EXPECT_GE(result->totalTime(), result->bootTime());
    EXPECT_FALSE(result->timeline.events().empty());
    // Every strategy ends in the Linux boot phase.
    EXPECT_GT(result->trace.phaseTotal(sim::phase::kLinuxBoot),
              sim::Duration::zero());

    if (GetParam() == StrategyKind::kStockFirecracker) {
        EXPECT_EQ(result->pre_encrypted_bytes, 0u);
        EXPECT_FALSE(result->attested);
    } else {
        EXPECT_GT(result->pre_encrypted_bytes, 0u);
        EXPECT_TRUE(result->attested);
        EXPECT_GT(result->provisioned_secret_bytes, 0u);
        EXPECT_GT(result->trace.phaseTotal(sim::phase::kPreEncryption),
                  sim::Duration::zero());
    }
}

TEST_P(StrategyTest, LupineSkipsAttestation)
{
    // Lupine has no networking (§6.1): attestation must be skipped.
    std::unique_ptr<BootStrategy> strategy = makeStrategy(GetParam());
    Result<LaunchResult> result = strategy->launch(
        platform_, smallRequest(workload::KernelConfig::kLupine));
    ASSERT_TRUE(result.isOk()) << result.status().toString();
    EXPECT_FALSE(result->attested);
    EXPECT_EQ(result->trace.phaseTotal(sim::phase::kAttestation),
              sim::Duration::zero());
}

INSTANTIATE_TEST_SUITE_P(
    AllStrategies, StrategyTest,
    ::testing::Values(StrategyKind::kStockFirecracker,
                      StrategyKind::kQemuOvmfSev,
                      StrategyKind::kSevDirectBoot,
                      StrategyKind::kSeveriFastBz,
                      StrategyKind::kSeveriFastVmlinux),
    [](const auto &info) {
        std::string name = strategyName(info.param);
        for (char &c : name) {
            if (c == '-') {
                c = '_';
            }
        }
        return name;
    });

class OrderingTest : public ::testing::Test
{
  protected:
    OrderingTest() : platform_(sim::CostParams::deterministic()) {}

    sim::Duration
    bootTimeOf(StrategyKind kind, workload::KernelConfig kernel)
    {
        Result<LaunchResult> r =
            makeStrategy(kind)->launch(platform_, smallRequest(kernel));
        EXPECT_TRUE(r.isOk()) << r.status().toString();
        return r->bootTime();
    }

    Platform platform_;
};

TEST_F(OrderingTest, PaperShapeHolds)
{
    using K = workload::KernelConfig;
    sim::Duration stock = bootTimeOf(StrategyKind::kStockFirecracker, K::kAws);
    sim::Duration sevf = bootTimeOf(StrategyKind::kSeveriFastBz, K::kAws);
    sim::Duration qemu = bootTimeOf(StrategyKind::kQemuOvmfSev, K::kAws);
    sim::Duration direct = bootTimeOf(StrategyKind::kSevDirectBoot, K::kAws);

    // Stock < SEVeriFast < QEMU; SEV direct boot is also far slower
    // than SEVeriFast (pre-encrypting the kernel, §3.2).
    EXPECT_LT(stock, sevf);
    EXPECT_LT(sevf, qemu);
    EXPECT_LT(sevf, direct);
    // SEVeriFast cuts >= 80% off QEMU even at 1/32 artifact scale
    // (constants dominate; full scale is checked by calibration_test).
    EXPECT_LT(sevf.toSecF(), qemu.toSecF() * 0.20);
}

TEST_F(OrderingTest, BiggerKernelsBootSlower)
{
    using K = workload::KernelConfig;
    sim::Duration lupine = bootTimeOf(StrategyKind::kSeveriFastBz, K::kLupine);
    sim::Duration aws = bootTimeOf(StrategyKind::kSeveriFastBz, K::kAws);
    sim::Duration ubuntu = bootTimeOf(StrategyKind::kSeveriFastBz, K::kUbuntu);
    EXPECT_LT(lupine, aws);
    EXPECT_LT(aws, ubuntu);
}

TEST_F(OrderingTest, PreEncryptionTinyForSeveriFastHugeForDirect)
{
    using K = workload::KernelConfig;
    Result<LaunchResult> sevf = makeStrategy(StrategyKind::kSeveriFastBz)
                                    ->launch(platform_, smallRequest(K::kAws));
    Result<LaunchResult> direct =
        makeStrategy(StrategyKind::kSevDirectBoot)
            ->launch(platform_, smallRequest(K::kAws));
    ASSERT_TRUE(sevf.isOk());
    ASSERT_TRUE(direct.isOk());
    // SEVeriFast's root of trust is ~21 KiB; direct boot measures MiBs.
    EXPECT_LT(sevf->pre_encrypted_bytes, 32 * kKiB);
    EXPECT_GT(direct->pre_encrypted_bytes, 100 * kKiB);
    EXPECT_LT(sevf->trace.phaseTotal(sim::phase::kPreEncryption),
              direct->trace.phaseTotal(sim::phase::kPreEncryption));
}

TEST_F(OrderingTest, OutOfBandHashingSavesVmmTime)
{
    LaunchRequest with = smallRequest(workload::KernelConfig::kUbuntu);
    LaunchRequest without = with;
    without.out_of_band_hashing = false;
    Result<LaunchResult> a =
        makeStrategy(StrategyKind::kSeveriFastBz)->launch(platform_, with);
    Result<LaunchResult> b =
        makeStrategy(StrategyKind::kSeveriFastBz)->launch(platform_, without);
    ASSERT_TRUE(a.isOk());
    ASSERT_TRUE(b.isOk());
    EXPECT_LT(a->trace.phaseTotal(sim::phase::kVmm),
              b->trace.phaseTotal(sim::phase::kVmm));
}

TEST_F(OrderingTest, BloatedVerifierCostsMorePreEncryption)
{
    LaunchRequest small = smallRequest(workload::KernelConfig::kAws);
    LaunchRequest bloated = small;
    bloated.verifier_size = 256 * kKiB; // td-shim-style featureful shim
    Result<LaunchResult> a =
        makeStrategy(StrategyKind::kSeveriFastBz)->launch(platform_, small);
    Result<LaunchResult> b =
        makeStrategy(StrategyKind::kSeveriFastBz)->launch(platform_, bloated);
    ASSERT_TRUE(a.isOk());
    ASSERT_TRUE(b.isOk()) << b.status().toString();
    EXPECT_LT(a->trace.phaseTotal(sim::phase::kPreEncryption),
              b->trace.phaseTotal(sim::phase::kPreEncryption));
}

TEST_F(OrderingTest, CompressedInitrdIsSlower)
{
    // Fig 5: compressing the initrd adds decompression without enough
    // verification savings.
    LaunchRequest raw = smallRequest(workload::KernelConfig::kAws);
    LaunchRequest packed = raw;
    packed.initrd_codec = compress::CodecKind::kLz4;
    Result<LaunchResult> a =
        makeStrategy(StrategyKind::kSeveriFastBz)->launch(platform_, raw);
    Result<LaunchResult> b =
        makeStrategy(StrategyKind::kSeveriFastBz)->launch(platform_, packed);
    ASSERT_TRUE(a.isOk());
    ASSERT_TRUE(b.isOk()) << b.status().toString();
    sim::Duration a_guest =
        a->trace.phaseTotal(sim::phase::kBootVerification) +
        a->trace.phaseTotal(sim::phase::kBootstrapLoader);
    sim::Duration b_guest =
        b->trace.phaseTotal(sim::phase::kBootVerification) +
        b->trace.phaseTotal(sim::phase::kBootstrapLoader);
    EXPECT_LT(a_guest, b_guest);
}

TEST_F(OrderingTest, MeasurementIsReproducibleAcrossLaunches)
{
    LaunchRequest req = smallRequest(workload::KernelConfig::kAws);
    Result<LaunchResult> a =
        makeStrategy(StrategyKind::kSeveriFastBz)->launch(platform_, req);
    Result<LaunchResult> b =
        makeStrategy(StrategyKind::kSeveriFastBz)->launch(platform_, req);
    ASSERT_TRUE(a.isOk());
    ASSERT_TRUE(b.isOk());
    // Same components => same launch digest, despite per-VM keys/SPAs.
    EXPECT_EQ(a->measurement, b->measurement);
}


TEST_F(OrderingTest, SevGenerationsOrdered)
{
    // SEV < SEV-ES < SEV-SNP in boot cost; attestation works on all
    // generations with encrypted state measured where it exists.
    LaunchRequest req = smallRequest(workload::KernelConfig::kAws);
    req.sev_mode = memory::SevMode::kSev;
    Result<LaunchResult> sev =
        makeStrategy(StrategyKind::kSeveriFastBz)->launch(platform_, req);
    req.sev_mode = memory::SevMode::kSevEs;
    Result<LaunchResult> es =
        makeStrategy(StrategyKind::kSeveriFastBz)->launch(platform_, req);
    req.sev_mode = memory::SevMode::kSevSnp;
    Result<LaunchResult> snp =
        makeStrategy(StrategyKind::kSeveriFastBz)->launch(platform_, req);
    ASSERT_TRUE(sev.isOk()) << sev.status().toString();
    ASSERT_TRUE(es.isOk()) << es.status().toString();
    ASSERT_TRUE(snp.isOk());

    EXPECT_LT(sev->bootTime(), es->bootTime());
    EXPECT_LT(es->bootTime(), snp->bootTime());
    // All generations attest end to end.
    EXPECT_TRUE(sev->attested);
    EXPECT_TRUE(es->attested);
    EXPECT_TRUE(snp->attested);
    // The VMSA joins the measurement on ES/SNP, so digests differ from
    // base SEV even with identical components.
    EXPECT_EQ(es->measurement, snp->measurement);
    EXPECT_NE(sev->measurement, es->measurement);
    // Only SNP pays the pvalidate sweep.
    EXPECT_EQ(sev->verifier_stats.pages_validated, 0u);
    EXPECT_GT(snp->verifier_stats.pages_validated, 0u);
}

TEST_F(OrderingTest, VcpuCountChangesEsMeasurement)
{
    LaunchRequest req = smallRequest(workload::KernelConfig::kAws);
    req.sev_mode = memory::SevMode::kSevSnp;
    Result<LaunchResult> one =
        makeStrategy(StrategyKind::kSeveriFastBz)->launch(platform_, req);
    req.vm.vcpus = 2;
    Result<LaunchResult> two =
        makeStrategy(StrategyKind::kSeveriFastBz)->launch(platform_, req);
    ASSERT_TRUE(one.isOk());
    ASSERT_TRUE(two.isOk()) << two.status().toString();
    EXPECT_NE(one->measurement, two->measurement);
    EXPECT_TRUE(two->attested) << "owner must model 2 VMSAs";
}


TEST_F(OrderingTest, GuestKaslrWorksUnderSev)
{
    // §8 extension: in-monitor KASLR is broken by SEVeriFast, but the
    // in-guest bootstrap loader can randomize instead - invisible to
    // the host, no effect on the measurement.
    LaunchRequest req = smallRequest(workload::KernelConfig::kLupine);
    req.guest_kaslr = true;
    req.seed = 5;
    Result<LaunchResult> a =
        makeStrategy(StrategyKind::kSeveriFastBz)->launch(platform_, req);
    req.seed = 6;
    Result<LaunchResult> b =
        makeStrategy(StrategyKind::kSeveriFastBz)->launch(platform_, req);
    ASSERT_TRUE(a.isOk()) << a.status().toString();
    ASSERT_TRUE(b.isOk());
    // Different in-guest entropy, different layout...
    EXPECT_NE(a->kaslr_slide, b->kaslr_slide);
    // ...same measurement: the slide never leaves the guest.
    EXPECT_EQ(a->measurement, b->measurement);
}

TEST_F(OrderingTest, JsonReportWellFormedAndComplete)
{
    LaunchRequest req = smallRequest(workload::KernelConfig::kAws);
    Result<LaunchResult> run =
        makeStrategy(StrategyKind::kSeveriFastBz)->launch(platform_, req);
    ASSERT_TRUE(run.isOk());
    std::string json = launchResultToJson(*run);
    // Structural smoke checks (full parse is out of scope here).
    EXPECT_EQ(json.front(), '{');
    EXPECT_EQ(json.back(), '}');
    EXPECT_NE(json.find("\"strategy\":\"severifast-bzimage\""),
              std::string::npos);
    EXPECT_NE(json.find("\"phases\""), std::string::npos);
    EXPECT_NE(json.find("\"pre_encryption\""), std::string::npos);
    EXPECT_NE(json.find("\"measurement\""), std::string::npos);
    EXPECT_NE(json.find("\"steps\""), std::string::npos);
    // Balanced braces/brackets.
    int depth = 0;
    bool in_string = false;
    for (std::size_t i = 0; i < json.size(); ++i) {
        char c = json[i];
        if (in_string) {
            if (c == '\\') {
                ++i;
            } else if (c == '"') {
                in_string = false;
            }
            continue;
        }
        if (c == '"') {
            in_string = true;
        } else if (c == '{' || c == '[') {
            ++depth;
        } else if (c == '}' || c == ']') {
            --depth;
            EXPECT_GE(depth, 0);
        }
    }
    EXPECT_EQ(depth, 0);

    // Compact form omits the steps array.
    std::string compact = launchResultToJson(*run, false);
    EXPECT_EQ(compact.find("\"steps\""), std::string::npos);
    EXPECT_LT(compact.size(), json.size());
}

TEST(StrategyNames, AllDistinct)
{
    EXPECT_STREQ(strategyName(StrategyKind::kSeveriFastBz),
                 "severifast-bzimage");
    EXPECT_STREQ(strategyName(StrategyKind::kStockFirecracker),
                 "stock-firecracker");
}

} // namespace
} // namespace sevf::core
