/**
 * @file
 * Crypto module tests against published vectors (FIPS 180-4, RFC 4231,
 * FIPS 197) plus properties of the XEX engine and launch-digest chain.
 */
#include <gtest/gtest.h>

#include <string>

#include "base/bytes.h"
#include "base/rng.h"
#include "crypto/aes128.h"
#include "crypto/hmac.h"
#include "crypto/measurement.h"
#include "crypto/sha256.h"
#include "crypto/xex.h"

namespace sevf::crypto {
namespace {

std::string
hexDigest(const Sha256Digest &d)
{
    return toHex(ByteSpan(d.data(), d.size()));
}

// ---------------------------------------------------------------- SHA-256

TEST(Sha256, EmptyString)
{
    EXPECT_EQ(hexDigest(Sha256::digest({})),
              "e3b0c44298fc1c149afbf4c8996fb924"
              "27ae41e4649b934ca495991b7852b855");
}

TEST(Sha256, Abc)
{
    EXPECT_EQ(hexDigest(Sha256::digest(asBytes("abc"))),
              "ba7816bf8f01cfea414140de5dae2223"
              "b00361a396177a9cb410ff61f20015ad");
}

TEST(Sha256, TwoBlockMessage)
{
    EXPECT_EQ(hexDigest(Sha256::digest(asBytes(
                  "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"))),
              "248d6a61d20638b8e5c026930c3e6039"
              "a33ce45964ff2167f6ecedd419db06c1");
}

TEST(Sha256, MillionAs)
{
    Sha256 ctx;
    std::string chunk(1000, 'a');
    for (int i = 0; i < 1000; ++i) {
        ctx.update(asBytes(chunk));
    }
    EXPECT_EQ(hexDigest(ctx.finalize()),
              "cdc76e5c9914fb9281a1c7e284d73e67"
              "f1809a48a497200e046d39ccc7112cd0");
}

TEST(Sha256, StreamingMatchesOneShot)
{
    // Split points that straddle the 64-byte block boundary.
    ByteVec data(257);
    Rng rng(42);
    rng.fill(data);
    Sha256Digest oneshot = Sha256::digest(data);

    for (std::size_t split : {1u, 63u, 64u, 65u, 128u, 200u, 256u}) {
        Sha256 ctx;
        ctx.update(ByteSpan(data).first(split));
        ctx.update(ByteSpan(data).subspan(split));
        EXPECT_EQ(ctx.finalize(), oneshot) << "split=" << split;
    }
}

TEST(Sha256, ExactBlockLengths)
{
    // 55/56/64 byte messages exercise all padding branches.
    for (std::size_t len : {55u, 56u, 63u, 64u, 119u, 120u}) {
        ByteVec data(len, 0x5a);
        Sha256 a;
        a.update(data);
        Sha256 b;
        for (u8 byte : data) {
            b.update(ByteSpan(&byte, 1));
        }
        EXPECT_EQ(a.finalize(), b.finalize()) << "len=" << len;
    }
}

TEST(Sha256, ResetReuses)
{
    Sha256 ctx;
    ctx.update(asBytes("abc"));
    (void)ctx.finalize();
    ctx.reset();
    ctx.update(asBytes("abc"));
    EXPECT_EQ(hexDigest(ctx.finalize()),
              "ba7816bf8f01cfea414140de5dae2223"
              "b00361a396177a9cb410ff61f20015ad");
}

// ---------------------------------------------------------------- HMAC

TEST(Hmac, Rfc4231Case1)
{
    ByteVec key(20, 0x0b);
    Sha256Digest mac = hmacSha256(key, asBytes("Hi There"));
    EXPECT_EQ(hexDigest(mac),
              "b0344c61d8db38535ca8afceaf0bf12b"
              "881dc200c9833da726e9376c2e32cff7");
}

TEST(Hmac, Rfc4231Case2)
{
    Sha256Digest mac =
        hmacSha256(asBytes("Jefe"), asBytes("what do ya want for nothing?"));
    EXPECT_EQ(hexDigest(mac),
              "5bdcc146bf60754e6a042426089575c7"
              "5a003f089d2739839dec58b964ec3843");
}

TEST(Hmac, Rfc4231Case3)
{
    ByteVec key(20, 0xaa);
    ByteVec data(50, 0xdd);
    Sha256Digest mac = hmacSha256(key, data);
    EXPECT_EQ(hexDigest(mac),
              "773ea91e36800e46854db8ebd09181a7"
              "2959098b3ef8c122d9635514ced565fe");
}

TEST(Hmac, LongKeyIsHashedFirst)
{
    // RFC 4231 case 6: 131-byte key.
    ByteVec key(131, 0xaa);
    Sha256Digest mac = hmacSha256(
        key, asBytes("Test Using Larger Than Block-Size Key - Hash Key First"));
    EXPECT_EQ(hexDigest(mac),
              "60e431591ee0b67f0d8a26aacbf5b77f"
              "8e0bc6213728c5140546040f0ee37f54");
}

TEST(Hmac, KeySensitivity)
{
    ByteVec k1(16, 1), k2(16, 2);
    EXPECT_NE(hmacSha256(k1, asBytes("msg")), hmacSha256(k2, asBytes("msg")));
}

// ---------------------------------------------------------------- AES-128

TEST(Aes128, Fips197Vector)
{
    Aes128Key key = {0x00, 0x01, 0x02, 0x03, 0x04, 0x05, 0x06, 0x07,
                     0x08, 0x09, 0x0a, 0x0b, 0x0c, 0x0d, 0x0e, 0x0f};
    AesBlock block = {0x00, 0x11, 0x22, 0x33, 0x44, 0x55, 0x66, 0x77,
                      0x88, 0x99, 0xaa, 0xbb, 0xcc, 0xdd, 0xee, 0xff};
    Aes128 aes(key);
    aes.encryptBlock(block.data());
    EXPECT_EQ(toHex(ByteSpan(block.data(), block.size())),
              "69c4e0d86a7b0430d8cdb78070b4c55a");
    aes.decryptBlock(block.data());
    EXPECT_EQ(toHex(ByteSpan(block.data(), block.size())),
              "00112233445566778899aabbccddeeff");
}

TEST(Aes128, EncryptDecryptRandomBlocks)
{
    Rng rng(1);
    Aes128Key key;
    rng.fill(key);
    Aes128 aes(key);
    for (int i = 0; i < 64; ++i) {
        AesBlock block, orig;
        rng.fill(block);
        orig = block;
        aes.encryptBlock(block.data());
        EXPECT_NE(block, orig);
        aes.decryptBlock(block.data());
        EXPECT_EQ(block, orig);
    }
}

// ---------------------------------------------------------------- XEX

class XexTest : public ::testing::Test
{
  protected:
    XexTest() : rng_(77)
    {
        rng_.fill(key_);
        rng_.fill(tweak_);
    }

    Rng rng_;
    Aes128Key key_;
    Aes128Key tweak_;
};

TEST_F(XexTest, RoundTrip)
{
    XexCipher xex(key_, tweak_);
    ByteVec data(4096);
    rng_.fill(data);
    ByteVec orig = data;
    xex.encrypt(data, 0x100000);
    EXPECT_NE(data, orig);
    xex.decrypt(data, 0x100000);
    EXPECT_EQ(data, orig);
}

TEST_F(XexTest, SamePlaintextDifferentAddressDiffers)
{
    // The SEV dedup-hostility property (§7.1): identical plaintext pages
    // at different physical addresses have different ciphertext.
    XexCipher xex(key_, tweak_);
    ByteVec a(4096, 0x41), b(4096, 0x41);
    xex.encrypt(a, 0x1000);
    xex.encrypt(b, 0x2000);
    EXPECT_NE(a, b);
}

TEST_F(XexTest, WrongAddressFailsToDecrypt)
{
    XexCipher xex(key_, tweak_);
    ByteVec data(64);
    rng_.fill(data);
    ByteVec orig = data;
    xex.encrypt(data, 0x1000);
    xex.decrypt(data, 0x2000); // remapped by a malicious host
    EXPECT_NE(data, orig);
}

TEST_F(XexTest, LineEncryptMatchesPageEncrypt)
{
    // Encrypting a single 16-byte line at an arbitrary mid-page address
    // must match the corresponding slice of a whole-page encrypt. This
    // pins the O(1) mid-page tweak jump (multiply by x^line_index) to
    // the sequential per-line tweak-doubling chain.
    XexCipher xex(key_, tweak_);
    ByteVec page(4096);
    rng_.fill(page);
    ByteVec whole = page;
    xex.encrypt(whole, 0x7000);
    for (u64 off : {u64{0}, u64{16}, u64{2032}, u64{4080}}) {
        ByteVec line(page.begin() + off, page.begin() + off + 16);
        xex.encrypt(line, 0x7000 + off);
        EXPECT_TRUE(std::equal(line.begin(), line.end(),
                               whole.begin() + off))
            << "line at offset " << off;
    }
}

TEST_F(XexTest, UnalignedRangeMatchesPageSlice)
{
    // A multi-line range entering mid-page (the guestWrite RMW path)
    // must also match the whole-page ciphertext slice.
    XexCipher xex(key_, tweak_);
    ByteVec page(8192);
    rng_.fill(page);
    ByteVec whole = page;
    xex.encrypt(whole, 0x30000);
    constexpr u64 kOff = 3000 / 16 * 16; // line-aligned mid-page entry
    constexpr u64 kLen = 4096;           // crosses the page boundary
    ByteVec range(page.begin() + kOff, page.begin() + kOff + kLen);
    xex.encrypt(range, 0x30000 + kOff);
    EXPECT_TRUE(
        std::equal(range.begin(), range.end(), whole.begin() + kOff));
}

TEST_F(XexTest, WrongKeyFailsToDecrypt)
{
    XexCipher xex(key_, tweak_);
    Aes128Key other_key = key_;
    other_key[0] ^= 1;
    XexCipher other(other_key, tweak_);
    ByteVec data(64);
    rng_.fill(data);
    ByteVec orig = data;
    xex.encrypt(data, 0x1000);
    other.decrypt(data, 0x1000);
    EXPECT_NE(data, orig);
}

// ------------------------------------------------------ launch digest

TEST(LaunchDigest, DeterministicChain)
{
    LaunchDigest a, b;
    Sha256Digest page = Sha256::digest(asBytes("verifier page"));
    a.extend(MeasuredPageType::kNormal, 0x1000, page);
    b.extend(MeasuredPageType::kNormal, 0x1000, page);
    EXPECT_EQ(a.value(), b.value());
}

TEST(LaunchDigest, OrderMatters)
{
    Sha256Digest p1 = Sha256::digest(asBytes("one"));
    Sha256Digest p2 = Sha256::digest(asBytes("two"));
    LaunchDigest a, b;
    a.extend(MeasuredPageType::kNormal, 0x1000, p1);
    a.extend(MeasuredPageType::kNormal, 0x2000, p2);
    b.extend(MeasuredPageType::kNormal, 0x2000, p2);
    b.extend(MeasuredPageType::kNormal, 0x1000, p1);
    EXPECT_NE(a.value(), b.value());
}

TEST(LaunchDigest, GpaMatters)
{
    Sha256Digest p = Sha256::digest(asBytes("page"));
    LaunchDigest a, b;
    a.extend(MeasuredPageType::kNormal, 0x1000, p);
    b.extend(MeasuredPageType::kNormal, 0x2000, p);
    EXPECT_NE(a.value(), b.value());
}

TEST(LaunchDigest, PageTypeMatters)
{
    Sha256Digest p = Sha256::digest(asBytes("page"));
    LaunchDigest a, b;
    a.extend(MeasuredPageType::kNormal, 0x1000, p);
    b.extend(MeasuredPageType::kZero, 0x1000, p);
    EXPECT_NE(a.value(), b.value());
}

TEST(LaunchDigest, ExtendRegionPadsTailPage)
{
    // 4097 bytes => two pages, the second mostly zero-padded.
    ByteVec data(4097, 0xcc);
    LaunchDigest ld;
    EXPECT_EQ(ld.extendRegion(MeasuredPageType::kNormal, 0x8000, data), 2u);

    // Manually: page 1 is 4096 x 0xcc; page 2 is 0xcc then zeros.
    LaunchDigest manual;
    ByteVec page1(4096, 0xcc);
    ByteVec page2(4096, 0);
    page2[0] = 0xcc;
    manual.extend(MeasuredPageType::kNormal, 0x8000, Sha256::digest(page1));
    manual.extend(MeasuredPageType::kNormal, 0x9000, Sha256::digest(page2));
    EXPECT_EQ(ld.value(), manual.value());
}

TEST(LaunchDigest, EmptyRegionNoOp)
{
    LaunchDigest ld;
    Sha256Digest before = ld.value();
    EXPECT_EQ(ld.extendRegion(MeasuredPageType::kNormal, 0, {}), 0u);
    EXPECT_EQ(ld.value(), before);
}

} // namespace
} // namespace sevf::crypto
