/**
 * @file
 * Fault-injection framework tests: plan parsing/round-trip, the
 * injector's deterministic triggers, the retry/backoff policy, cache
 * disk-tier quarantine, DRAM mmap fallback, and admission-pipeline load
 * shedding (including drain-during-fault and double-drain).
 */
#include <gtest/gtest.h>

#include <filesystem>

#include "cache/launch_key.h"
#include "cache/template_cache.h"
#include "core/admission.h"
#include "core/launch.h"
#include "fault/fault.h"
#include "fault/retry.h"
#include "memory/dram.h"
#include "psp/key_server.h"
#include "psp/psp.h"

namespace sevf {
namespace {

using fault::FaultInjector;
using fault::FaultPlan;
using fault::FaultSite;
using fault::RetryPolicy;
using fault::ScopedFaultPlan;

// ===================================================================
// FaultPlan parsing
// ===================================================================

TEST(FaultPlanTest, ParsesSitesTriggersAndSeed)
{
    Result<FaultPlan> plan = FaultPlan::parse(
        "seed=7; psp:p=0.25; disk-read:nth=2,count=3; admission:nth=1");
    ASSERT_TRUE(plan.isOk()) << plan.status().toString();
    EXPECT_EQ(plan->seed, 7u);
    ASSERT_EQ(plan->rules.size(), 3u);
    EXPECT_EQ(plan->rules[0].site, FaultSite::kPspCommand);
    EXPECT_DOUBLE_EQ(plan->rules[0].probability, 0.25);
    EXPECT_EQ(plan->rules[1].site, FaultSite::kCacheDiskRead);
    EXPECT_EQ(plan->rules[1].nth, 2u);
    EXPECT_EQ(plan->rules[1].count, 3u);
    EXPECT_EQ(plan->rules[2].site, FaultSite::kAdmissionEnqueue);
    EXPECT_EQ(plan->rules[2].nth, 1u);
    EXPECT_EQ(plan->rules[2].count, 1u);
}

TEST(FaultPlanTest, RoundTripsThroughToString)
{
    const char *spec = "seed=9;psp:p=0.5;disk-write:nth=1,count=4";
    Result<FaultPlan> plan = FaultPlan::parse(spec);
    ASSERT_TRUE(plan.isOk());
    EXPECT_EQ(plan->toString(), spec);
    Result<FaultPlan> again = FaultPlan::parse(plan->toString());
    ASSERT_TRUE(again.isOk());
    EXPECT_EQ(again->toString(), plan->toString());
}

TEST(FaultPlanTest, RejectsMalformedSpecs)
{
    EXPECT_FALSE(FaultPlan::parse("warp-core:p=0.5").isOk());
    EXPECT_FALSE(FaultPlan::parse("psp").isOk()) << "no trigger";
    EXPECT_FALSE(FaultPlan::parse("psp:p=1.5").isOk()) << "p out of range";
    EXPECT_FALSE(FaultPlan::parse("psp:nth=0").isOk()) << "nth is 1-based";
    EXPECT_FALSE(FaultPlan::parse("psp:count=0").isOk());
    EXPECT_FALSE(FaultPlan::parse("psp:nth=1,p=0.5").isOk())
        << "mixed triggers";
    EXPECT_FALSE(FaultPlan::parse("psp:warp=9").isOk());
    EXPECT_FALSE(FaultPlan::parse("seed=banana").isOk());
}

TEST(FaultPlanTest, SiteNamesRoundTrip)
{
    for (FaultSite site :
         {FaultSite::kPspCommand, FaultSite::kCacheDiskRead,
          FaultSite::kCacheDiskWrite, FaultSite::kDramMmap,
          FaultSite::kAdmissionEnqueue, FaultSite::kServiceEnqueue}) {
        Result<FaultSite> parsed =
            fault::parseFaultSite(fault::faultSiteName(site));
        ASSERT_TRUE(parsed.isOk()) << fault::faultSiteName(site);
        EXPECT_EQ(*parsed, site);
    }
    EXPECT_FALSE(fault::parseFaultSite("psp ").isOk());
}

// ===================================================================
// FaultInjector triggers
// ===================================================================

TEST(FaultInjectorTest, DisarmedInjectsNothing)
{
    FaultInjector &inj = FaultInjector::instance();
    ASSERT_FALSE(inj.armed());
    for (int i = 0; i < 100; ++i) {
        EXPECT_TRUE(inj.check(FaultSite::kPspCommand, "test").isOk());
    }
}

TEST(FaultInjectorTest, NthWindowFiresExactly)
{
    Result<FaultPlan> plan = FaultPlan::parse("psp:nth=3,count=2");
    ASSERT_TRUE(plan.isOk());
    ScopedFaultPlan armed(plan.take());
    FaultInjector &inj = FaultInjector::instance();
    for (u64 occ = 1; occ <= 8; ++occ) {
        Status s = inj.check(FaultSite::kPspCommand, "test");
        if (occ == 3 || occ == 4) {
            EXPECT_FALSE(s.isOk()) << "occurrence " << occ;
            EXPECT_EQ(s.code(), ErrorCode::kUnavailable);
        } else {
            EXPECT_TRUE(s.isOk()) << "occurrence " << occ;
        }
    }
    FaultInjector::SiteStats stats =
        inj.siteStats(FaultSite::kPspCommand);
    EXPECT_EQ(stats.occurrences, 8u);
    EXPECT_EQ(stats.injected, 2u);
    // Sites without rules never fire.
    EXPECT_TRUE(inj.check(FaultSite::kDramMmap, "test").isOk());
}

TEST(FaultInjectorTest, ProbabilityIsSeededAndDeterministic)
{
    auto run = [](u64 seed) {
        FaultPlan plan;
        plan.seed = seed;
        plan.rules.push_back({FaultSite::kCacheDiskRead, 0.5, 0, 1});
        ScopedFaultPlan armed(plan);
        std::vector<bool> fired;
        for (int i = 0; i < 64; ++i) {
            fired.push_back(!FaultInjector::instance()
                                 .check(FaultSite::kCacheDiskRead, "t")
                                 .isOk());
        }
        return fired;
    };
    std::vector<bool> a = run(11);
    EXPECT_EQ(a, run(11)) << "same seed, same fault sequence";
    EXPECT_NE(a, run(12)) << "different seed, different sequence";
    std::size_t injected = 0;
    for (bool b : a) {
        injected += b ? 1 : 0;
    }
    EXPECT_GT(injected, 16u);
    EXPECT_LT(injected, 48u);
}

TEST(FaultInjectorTest, ArmResetsOccurrenceCounters)
{
    Result<FaultPlan> plan = FaultPlan::parse("psp:nth=1");
    ASSERT_TRUE(plan.isOk());
    FaultPlan p = plan.take();
    {
        ScopedFaultPlan armed(p);
        EXPECT_FALSE(FaultInjector::instance()
                         .check(FaultSite::kPspCommand, "t")
                         .isOk());
        EXPECT_TRUE(FaultInjector::instance()
                        .check(FaultSite::kPspCommand, "t")
                        .isOk());
    }
    ScopedFaultPlan rearmed(p);
    EXPECT_FALSE(FaultInjector::instance()
                     .check(FaultSite::kPspCommand, "t")
                     .isOk())
        << "re-arming restarts occurrence counting";
}

// ===================================================================
// Retry policy
// ===================================================================

TEST(RetryTest, BackoffDoublesAndCaps)
{
    RetryPolicy policy;
    policy.base_delay_ns = 1000;
    policy.max_delay_ns = 6000;
    policy.jitter = 0.0;
    Rng rng(1);
    EXPECT_EQ(fault::backoffDelayNs(policy, 2, rng), 1000u);
    EXPECT_EQ(fault::backoffDelayNs(policy, 3, rng), 2000u);
    EXPECT_EQ(fault::backoffDelayNs(policy, 4, rng), 4000u);
    EXPECT_EQ(fault::backoffDelayNs(policy, 5, rng), 6000u) << "capped";
    EXPECT_EQ(fault::backoffDelayNs(policy, 9, rng), 6000u);
}

TEST(RetryTest, JitterStaysWithinFraction)
{
    RetryPolicy policy;
    policy.base_delay_ns = 100000;
    policy.max_delay_ns = 400000;
    policy.jitter = 0.25;
    Rng rng(42);
    for (int i = 0; i < 100; ++i) {
        u64 d = fault::backoffDelayNs(policy, 2, rng);
        EXPECT_GE(d, 75000u);
        EXPECT_LT(d, 125000u);
    }
}

TEST(RetryTest, MaxDelayIsHardCapEvenWithJitter)
{
    // Regression: jitter used to be applied after the cap, so a delay
    // already at max_delay_ns could come out up to (1+jitter)*max —
    // while docs/RELIABILITY.md documents max_delay_ns as a cap on any
    // single delay. The cap must hold post-jitter.
    RetryPolicy policy; // documented defaults: 10 ms cap, 0.1 jitter
    Rng rng(7);
    bool saw_below_cap = false;
    for (int i = 0; i < 1000; ++i) {
        // Attempt 9 is deep enough that the raw delay saturates at max.
        u64 d = fault::backoffDelayNs(policy, 9, rng);
        EXPECT_LE(d, policy.max_delay_ns);
        EXPECT_GE(d, static_cast<u64>(static_cast<double>(
                         policy.max_delay_ns) * (1.0 - policy.jitter)));
        saw_below_cap = saw_below_cap || d < policy.max_delay_ns;
    }
    EXPECT_TRUE(saw_below_cap)
        << "jitter must still spread delays below the cap";
}

TEST(RetryTest, RetriesTransientUntilSuccess)
{
    RetryPolicy policy;
    policy.max_attempts = 4;
    int calls = 0;
    Status s = fault::retryStatus(policy, "test_op", [&] {
        ++calls;
        return calls < 3 ? errUnavailable("busy") : Status::ok();
    });
    EXPECT_TRUE(s.isOk());
    EXPECT_EQ(calls, 3);
}

TEST(RetryTest, PermanentErrorsAreNotRetried)
{
    RetryPolicy policy;
    policy.max_attempts = 5;
    int calls = 0;
    Status s = fault::retryStatus(policy, "test_op", [&] {
        ++calls;
        return errInvalidState("locked");
    });
    EXPECT_FALSE(s.isOk());
    EXPECT_EQ(s.code(), ErrorCode::kInvalidState);
    EXPECT_EQ(calls, 1) << "only kUnavailable is in the retryable table";
}

TEST(RetryTest, BudgetExhaustionReturnsLastTransient)
{
    RetryPolicy policy;
    policy.max_attempts = 3;
    int calls = 0;
    Status s = fault::retryStatus(policy, "test_op", [&] {
        ++calls;
        return errUnavailable("still busy");
    });
    EXPECT_FALSE(s.isOk());
    EXPECT_EQ(s.code(), ErrorCode::kUnavailable);
    EXPECT_EQ(calls, 3);
}

TEST(RetryTest, RetryResultCarriesTheValue)
{
    RetryPolicy policy;
    policy.max_attempts = 3;
    int calls = 0;
    Result<int> r =
        fault::retryResult(policy, "test_op", [&]() -> Result<int> {
            ++calls;
            if (calls < 2) {
                return errUnavailable("busy");
            }
            return 1234;
        });
    ASSERT_TRUE(r.isOk());
    EXPECT_EQ(*r, 1234);
    EXPECT_EQ(calls, 2);
}

// ===================================================================
// PSP command retry end to end
// ===================================================================

TEST(PspRetryTest, TransientFaultsAreAbsorbedWithinBudget)
{
    // Fail the first two PSP command submissions; the default budget of
    // 3 attempts absorbs both, so the launch flow sees no error.
    Result<FaultPlan> plan = FaultPlan::parse("psp:nth=1,count=2");
    ASSERT_TRUE(plan.isOk());
    ScopedFaultPlan armed(plan.take());

    psp::KeyServer kds;
    psp::Psp psp("chip-retry", kds, /*seed=*/5);
    memory::GuestMemory mem(4 * kPageSize, 0, psp.allocateAsid());
    Result<psp::GuestHandle> handle = psp.launchStart(mem, /*policy=*/1);
    ASSERT_TRUE(handle.isOk()) << handle.status().toString();
}

TEST(PspRetryTest, ExhaustedBudgetReturnsTypedUnavailable)
{
    // Four consecutive submission faults beat the 3-attempt budget.
    Result<FaultPlan> plan = FaultPlan::parse("psp:nth=1,count=4");
    ASSERT_TRUE(plan.isOk());
    ScopedFaultPlan armed(plan.take());

    psp::KeyServer kds;
    psp::Psp psp("chip-exhaust", kds, /*seed=*/5);
    memory::GuestMemory mem(4 * kPageSize, 0, psp.allocateAsid());
    Result<psp::GuestHandle> handle = psp.launchStart(mem, /*policy=*/1);
    ASSERT_FALSE(handle.isOk());
    EXPECT_EQ(handle.status().code(), ErrorCode::kUnavailable);

    // The budget is configurable: 5 attempts would have survived.
    RetryPolicy generous;
    generous.max_attempts = 5;
    psp::Psp psp2("chip-generous", kds, /*seed=*/6);
    psp2.setRetryPolicy(generous);
    EXPECT_EQ(psp2.retryPolicy().max_attempts, 5u);
}

// ===================================================================
// Cache disk-tier quarantine
// ===================================================================

cache::LaunchKey
testKey(u64 n)
{
    cache::LaunchKeyBuilder kb;
    kb.addU64("fault_test_key", n);
    return kb.build();
}

std::shared_ptr<const cache::LaunchTemplate>
testTemplate()
{
    auto t = std::make_shared<cache::LaunchTemplate>();
    cache::TemplateRegion region;
    region.name = "payload";
    region.plaintext = std::make_shared<const ByteVec>(kPageSize, u8{0xcd});
    region.page_digests.resize(1);
    t->plan.push_back(std::move(region));
    return t;
}

class QuarantineTest : public ::testing::Test
{
  protected:
    void SetUp() override
    {
        dir_ = std::filesystem::temp_directory_path() /
               "sevf_fault_quarantine_test";
        std::filesystem::remove_all(dir_);
        std::filesystem::create_directories(dir_);
    }
    void TearDown() override { std::filesystem::remove_all(dir_); }

    std::filesystem::path dir_;
};

TEST_F(QuarantineTest, RepeatedWriteFaultsQuarantineTheDiskTier)
{
    Result<FaultPlan> plan = FaultPlan::parse("disk-write:p=1");
    ASSERT_TRUE(plan.isOk());
    ScopedFaultPlan armed(plan.take());

    cache::TemplateCache cache;
    cache.setDiskDir(dir_.string());
    for (u64 i = 0; i < cache::TemplateCache::kQuarantineStreak; ++i) {
        EXPECT_FALSE(cache.diskQuarantined());
        cache.publish(testKey(i), testTemplate());
    }
    EXPECT_TRUE(cache.diskQuarantined());
    cache::TemplateCache::Stats stats = cache.stats();
    EXPECT_EQ(stats.disk_errors, cache::TemplateCache::kQuarantineStreak);
    EXPECT_EQ(stats.quarantined, 1u);
    EXPECT_TRUE(std::filesystem::is_empty(dir_))
        << "every write was injected away";

    // Degraded to memory-only: publishes/lookups still work, no more
    // disk errors accumulate, and the in-memory entries still hit.
    cache.publish(testKey(99), testTemplate());
    EXPECT_NE(cache.find(testKey(99)), nullptr);
    EXPECT_EQ(cache.stats().disk_errors,
              cache::TemplateCache::kQuarantineStreak);

    // Re-blessing the disk dir lifts the quarantine.
    cache.setDiskDir(dir_.string());
    EXPECT_FALSE(cache.diskQuarantined());
}

TEST_F(QuarantineTest, ReadFaultsCountAsErrorsNotMisses)
{
    cache::TemplateCache cache;
    cache.setDiskDir(dir_.string());
    cache.publish(testKey(1), testTemplate());
    ASSERT_FALSE(std::filesystem::is_empty(dir_));

    Result<FaultPlan> plan = FaultPlan::parse("disk-read:nth=1");
    ASSERT_TRUE(plan.isOk());
    ScopedFaultPlan armed(plan.take());

    // Fresh cache sharing the disk dir: the injected read fault makes
    // the lookup a miss-with-error (claimed build), not a hit.
    cache::TemplateCache fresh;
    fresh.setDiskDir(dir_.string());
    cache::TemplateCache::Lookup lookup = fresh.beginLookup(testKey(1));
    EXPECT_EQ(lookup.tmpl, nullptr);
    EXPECT_TRUE(lookup.claimed);
    fresh.abandon(testKey(1));
    cache::TemplateCache::Stats stats = fresh.stats();
    EXPECT_EQ(stats.disk_errors, 1u);
    EXPECT_EQ(stats.misses, 1u);
    EXPECT_EQ(stats.quarantined, 0u) << "one error is below the streak";

    // The next lookup (fault exhausted) hits from disk and resets the
    // error streak.
    cache::TemplateCache::Lookup retry = fresh.beginLookup(testKey(1));
    EXPECT_NE(retry.tmpl, nullptr);
    EXPECT_EQ(fresh.stats().disk_errors, 1u);
}

TEST(PoisonTest, InvalidateCountsPoisonedTemplates)
{
    cache::TemplateCache cache;
    cache.publish(testKey(5), testTemplate());
    EXPECT_EQ(cache.stats().poisoned, 0u);
    cache.invalidate(testKey(5));
    EXPECT_EQ(cache.stats().poisoned, 1u);
    EXPECT_EQ(cache.find(testKey(5)), nullptr);
}

// ===================================================================
// DRAM mmap fallback
// ===================================================================

TEST(DramFaultTest, MmapFaultDegradesToHeapFallback)
{
    Result<FaultPlan> plan = FaultPlan::parse("dram-mmap:nth=1");
    ASSERT_TRUE(plan.isOk());
    ScopedFaultPlan armed(plan.take());

    // First allocation hits the injected mmap failure and falls back;
    // contents are still all-zero and writable either way.
    memory::DramBuffer faulted(4 * kPageSize);
    ASSERT_EQ(faulted.size(), 4 * kPageSize);
    for (u64 i = 0; i < faulted.size(); i += kPageSize) {
        EXPECT_EQ(faulted.data()[i], 0u);
    }
    faulted.data()[123] = 0x5a;
    EXPECT_EQ(faulted.data()[123], 0x5a);

    memory::DramBuffer mapped(4 * kPageSize);
    EXPECT_EQ(mapped.data()[0], 0u) << "second allocation maps normally";
}

// ===================================================================
// Admission load shedding + drain error paths
// ===================================================================

core::LaunchRequest
tinyRequest()
{
    core::LaunchRequest req;
    req.kernel = workload::KernelConfig::kAws;
    req.scale = 1.0 / 32.0;
    req.attest = false;
    return req;
}

TEST(AdmissionShedTest, InjectedEnqueueFaultShedsWithBackpressure)
{
    core::Platform platform(sim::CostParams::deterministic());
    core::AdmissionPipeline pipeline(platform);

    Result<FaultPlan> plan = FaultPlan::parse("admission:nth=1");
    ASSERT_TRUE(plan.isOk());
    std::shared_ptr<core::LaunchTicket> shed;
    std::shared_ptr<core::LaunchTicket> admitted;
    {
        ScopedFaultPlan armed(plan.take());
        shed = pipeline.submit(core::StrategyKind::kSeveriFastBz,
                               tinyRequest());
        admitted = pipeline.submit(core::StrategyKind::kSeveriFastBz,
                                   tinyRequest());
    }

    // The shed ticket resolves immediately with the typed error.
    ASSERT_TRUE(shed->ready());
    Result<core::LaunchResult> rejected = shed->take();
    ASSERT_FALSE(rejected.isOk());
    EXPECT_EQ(rejected.status().code(), ErrorCode::kBackpressure);

    Result<core::LaunchResult> ok = admitted->take();
    ASSERT_TRUE(ok.isOk()) << ok.status().toString();

    core::AdmissionPipeline::Stats stats = pipeline.stats();
    EXPECT_EQ(stats.shed, 1u);
    EXPECT_EQ(stats.submitted, 1u) << "shed launches are not admitted";
    EXPECT_EQ(stats.completed, 1u);
}

TEST(AdmissionShedTest, ShedOnFullRejectsWhenQueueIsSaturated)
{
    core::Platform platform(sim::CostParams::deterministic());
    core::AdmissionConfig config;
    config.workers = 1;
    config.queue_depth = 1;
    config.shed_on_full = true;
    core::AdmissionPipeline pipeline(platform, config);

    // Saturate: one job running, one queued, then a burst. With
    // shed_on_full nothing blocks; some of the burst must shed.
    std::vector<std::shared_ptr<core::LaunchTicket>> tickets;
    for (int i = 0; i < 8; ++i) {
        tickets.push_back(pipeline.submit(
            core::StrategyKind::kStockFirecracker, tinyRequest()));
    }
    pipeline.drain();

    u64 ok = 0;
    u64 backpressure = 0;
    for (auto &t : tickets) {
        Result<core::LaunchResult> r = t->take();
        if (r.isOk()) {
            ++ok;
        } else {
            ASSERT_EQ(r.status().code(), ErrorCode::kBackpressure)
                << r.status().toString();
            ++backpressure;
        }
    }
    EXPECT_EQ(ok + backpressure, 8u);
    EXPECT_GE(ok, 1u) << "the running job always completes";
    core::AdmissionPipeline::Stats stats = pipeline.stats();
    EXPECT_EQ(stats.shed, backpressure);
    EXPECT_EQ(stats.submitted, ok);
}

TEST(AdmissionShedTest, DrainDuringFaultCompletesEveryTicket)
{
    // Faults on every other enqueue: drain() must still terminate with
    // every ticket (shed or admitted) resolved.
    core::Platform platform(sim::CostParams::deterministic());
    core::AdmissionPipeline pipeline(platform);
    Result<FaultPlan> plan = FaultPlan::parse("seed=3;admission:p=0.5");
    ASSERT_TRUE(plan.isOk());
    std::vector<std::shared_ptr<core::LaunchTicket>> tickets;
    {
        ScopedFaultPlan armed(plan.take());
        for (int i = 0; i < 8; ++i) {
            tickets.push_back(pipeline.submit(
                core::StrategyKind::kSeveriFastBz, tinyRequest()));
        }
        pipeline.drain();
    }
    for (auto &t : tickets) {
        EXPECT_TRUE(t->ready()) << "drain() leaves no ticket pending";
        Result<core::LaunchResult> r = t->take();
        if (!r.isOk()) {
            EXPECT_EQ(r.status().code(), ErrorCode::kBackpressure);
        }
    }
    core::AdmissionPipeline::Stats stats = pipeline.stats();
    EXPECT_EQ(stats.shed + stats.submitted, 8u);
}

TEST(AdmissionShedTest, DoubleDrainIsIdempotent)
{
    core::Platform platform(sim::CostParams::deterministic());
    core::AdmissionPipeline pipeline(platform);
    auto ticket = pipeline.submit(core::StrategyKind::kStockFirecracker,
                                  tinyRequest());
    pipeline.drain();
    pipeline.drain(); // second drain on an idle pipeline returns at once
    EXPECT_TRUE(ticket->ready());
    EXPECT_TRUE(ticket->take().isOk());
    pipeline.drain(); // and a third after consumption still no-ops
}

} // namespace
} // namespace sevf
