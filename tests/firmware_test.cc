/**
 * @file
 * Firmware (OVMF model) tests and QEMU-path integration invariants:
 * the full state-of-the-art boot flow with its firmware pre-encryption,
 * measured cmdline, and launch-digest agreement.
 */
#include <gtest/gtest.h>

#include "attest/expected_measurement.h"
#include "base/bytes.h"
#include "core/launch.h"
#include "firmware/ovmf.h"
#include "vmm/microvm.h"
#include "vmm/layout.h"
#include "workload/synthetic.h"

namespace sevf::firmware {
namespace {

class OvmfModelTest : public ::testing::Test
{
  protected:
    OvmfModelTest() : model_(sim::CostParams::deterministic()) {}
    sim::CostModel model_;
};

TEST_F(OvmfModelTest, PhasesInPiOrder)
{
    std::vector<UefiPhase> phases = uefiPhases(model_);
    ASSERT_EQ(phases.size(), 4u);
    EXPECT_EQ(phases[0].name, "SEC");
    EXPECT_EQ(phases[1].name, "PEI");
    EXPECT_EQ(phases[2].name, "DXE");
    EXPECT_EQ(phases[3].name, "BDS");
    // DXE dominates (Fig 3).
    for (const UefiPhase &p : phases) {
        if (p.name != "DXE") {
            EXPECT_LT(p.duration, phases[2].duration);
        }
    }
}

TEST_F(OvmfModelTest, TotalMatchesFig3Scale)
{
    // Phases alone land just above 3 s; boot verification rides on top.
    double total = uefiPhasesTotal(model_).toSecF();
    EXPECT_GT(total, 2.9);
    EXPECT_LT(total, 3.3);
}

TEST_F(OvmfModelTest, ImageIsOneMiBAndDeterministic)
{
    ByteVec image = ovmfImage(model_);
    EXPECT_EQ(image.size(), 1 * kMiB);
    EXPECT_EQ(image, ovmfImage(model_));
    std::string head(image.begin(), image.begin() + 4);
    EXPECT_EQ(head, "_FVH");
}

// ------------------------------------------------- QEMU path integration

class QemuIntegration : public ::testing::Test
{
  protected:
    QemuIntegration() : platform_(sim::CostParams::deterministic())
    {
        request_.kernel = workload::KernelConfig::kLupine;
        request_.scale = 1.0 / 32.0;
    }

    core::Platform platform_;
    core::LaunchRequest request_;
};

TEST_F(QemuIntegration, FirmwareIsPreEncryptedAndLocked)
{
    request_.keep_vm = true;
    Result<core::LaunchResult> run =
        core::makeStrategy(core::StrategyKind::kQemuOvmfSev)
            ->launch(platform_, request_);
    ASSERT_TRUE(run.isOk()) << run.status().toString();

    // The 1 MiB firmware dominates the measured payload.
    EXPECT_GT(run->pre_encrypted_bytes, 1 * kMiB);
    // DRAM at the firmware base is ciphertext and host-locked.
    memory::GuestMemory &mem = run->vm->memory();
    ByteVec dram = *mem.hostRead(kOvmfBaseGpa, 64);
    ByteVec plain = ovmfImage(platform_.cost());
    EXPECT_NE(dram, ByteVec(plain.begin(), plain.begin() + 64));
    EXPECT_FALSE(
        mem.hostWrite(kOvmfBaseGpa, ByteVec(16, 0)).isOk());
    // The guest sees the firmware through the C-bit.
    EXPECT_EQ(*mem.guestRead(kOvmfBaseGpa, 64, true),
              ByteVec(plain.begin(), plain.begin() + 64));
}

TEST_F(QemuIntegration, CmdlineVerifiedAndProtected)
{
    request_.keep_vm = true;
    Result<core::LaunchResult> run =
        core::makeStrategy(core::StrategyKind::kQemuOvmfSev)
            ->launch(platform_, request_);
    ASSERT_TRUE(run.isOk());
    memory::GuestMemory &mem = run->vm->memory();

    // The verified cmdline lives in protected memory at the boot-struct
    // location (QEMU hashes it rather than pre-encrypting it, Fig 7).
    ByteVec in_guest = *mem.guestRead(
        vmm::layout::kCmdlineGpa, request_.vm.cmdline.size(), true);
    EXPECT_EQ(std::string(in_guest.begin(), in_guest.end()),
              request_.vm.cmdline);
}

TEST_F(QemuIntegration, MeasurementCoversFirmwareNotKernel)
{
    Result<core::LaunchResult> run =
        core::makeStrategy(core::StrategyKind::kQemuOvmfSev)
            ->launch(platform_, request_);
    ASSERT_TRUE(run.isOk());

    // Reconstruct the expected digest: OVMF + hash page + VMSA. The
    // kernel itself is NOT in the chain (measured-direct-boot).
    const workload::KernelArtifacts &art =
        workload::cachedKernelArtifacts(request_.kernel, request_.scale);
    const ByteVec &initrd = workload::cachedInitrd(request_.scale);
    verifier::BootHashes hashes = verifier::BootHashes::compute(
        art.bzimage, initrd, asBytes(request_.vm.cmdline));
    std::vector<attest::PreEncryptedRegion> plan;
    plan.push_back({"ovmf", kOvmfBaseGpa, ovmfImage(platform_.cost())});
    plan.push_back({"component_hashes", vmm::layout::kHashTableGpa,
                    hashes.toPage()});
    attest::VmsaInfo vmsa{request_.vm.vcpus, request_.vm.sev_policy,
                          vmm::layout::kVmsaGpa};
    EXPECT_EQ(run->measurement,
              attest::expectedMeasurement(plan, vmsa));
}

TEST_F(QemuIntegration, TamperedCmdlineRejected)
{
    // The host substitutes a different cmdline after hashing: detected
    // by the firmware's boot verifier.
    request_.keep_vm = true;
    // Run a good launch first, then replay with a poisoned staging: the
    // easiest injection point is a different cmdline in the request vs
    // the staged bytes - emulate by corrupting staging post-hash via
    // the strategy-internal flow being inaccessible, so instead check
    // the equivalent property at the verifier level in verifier_test.
    // Here: assert that changing the cmdline changes the hash page and
    // hence the measurement.
    Result<core::LaunchResult> a =
        core::makeStrategy(core::StrategyKind::kQemuOvmfSev)
            ->launch(platform_, request_);
    request_.vm.cmdline += " panic=0";
    Result<core::LaunchResult> b =
        core::makeStrategy(core::StrategyKind::kQemuOvmfSev)
            ->launch(platform_, request_);
    ASSERT_TRUE(a.isOk());
    ASSERT_TRUE(b.isOk());
    EXPECT_NE(a->measurement, b->measurement);
}

TEST_F(QemuIntegration, FirmwarePhaseDwarfsVerification)
{
    Result<core::LaunchResult> run =
        core::makeStrategy(core::StrategyKind::kQemuOvmfSev)
            ->launch(platform_, request_);
    ASSERT_TRUE(run.isOk());
    sim::Duration fw = run->trace.phaseTotal(sim::phase::kFirmware);
    sim::Duration verify =
        run->trace.phaseTotal(sim::phase::kBootVerification);
    EXPECT_GT(fw.toMsF(), verify.toMsF() * 20.0)
        << "Fig 3: the verifier is a small slice of the OVMF runtime";
}

} // namespace
} // namespace sevf::firmware
