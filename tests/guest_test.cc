/**
 * @file
 * Guest-side tests: the bzImage bootstrap loader (real decompression in
 * encrypted memory) and the end-to-end attestation client.
 */
#include <gtest/gtest.h>

#include <set>

#include "attest/expected_measurement.h"
#include "attest/guest_owner.h"
#include "base/bytes.h"
#include "guest/attestation_client.h"
#include "guest/bootstrap_loader.h"
#include "image/bzimage.h"
#include "image/elf.h"
#include "psp/psp.h"
#include "workload/synthetic.h"

namespace sevf::guest {
namespace {

constexpr double kScale = 1.0 / 32.0;
constexpr Spa kSpaBase = 0x100000000ull;

/** Claim+validate a GPA range for private use. */
void
claim(memory::GuestMemory &mem, Gpa gpa, u64 len)
{
    for (Gpa p = alignDown(gpa, kPageSize); p < gpa + len; p += kPageSize) {
        ASSERT_TRUE(
            mem.rmp().rmpUpdate(mem.spaOf(p), mem.asid(), p, true).isOk());
        ASSERT_TRUE(
            mem.rmp().pvalidate(mem.spaOf(p), mem.asid(), p, true).isOk());
    }
}

class BootstrapLoaderTest : public ::testing::Test
{
  protected:
    BootstrapLoaderTest()
        : art_(workload::cachedKernelArtifacts(
              workload::KernelConfig::kLupine, kScale))
    {
    }

    const workload::KernelArtifacts &art_;
};

TEST_F(BootstrapLoaderTest, PlainBzImageBoot)
{
    memory::GuestMemory mem(64 * kMiB, kSpaBase, 0);
    ASSERT_TRUE(mem.hostWrite(0x2000000, art_.bzimage).isOk());
    Result<LoadedKernel> loaded =
        runBootstrapLoader(mem, 0x2000000, art_.bzimage.size(), false);
    ASSERT_TRUE(loaded.isOk()) << loaded.status().toString();
    EXPECT_EQ(loaded->entry, art_.entry);
    EXPECT_EQ(loaded->decompressed_bytes, art_.vmlinux.size());
    EXPECT_GT(loaded->loaded_bytes, 0u);

    // Segment data landed at its vaddr; BSS is zeroed.
    Result<image::ElfImage> elf = image::parseElf(art_.vmlinux);
    ASSERT_TRUE(elf.isOk());
    const image::ElfSegment &last = elf->segments.back();
    ASSERT_GT(last.memsz, last.data.size());
    Result<ByteVec> bss = mem.hostRead(last.vaddr + last.data.size(), 16);
    ASSERT_TRUE(bss.isOk());
    EXPECT_EQ(*bss, ByteVec(16, 0));
}

TEST_F(BootstrapLoaderTest, EncryptedBzImageBoot)
{
    Rng rng(8);
    crypto::Aes128Key k, t;
    rng.fill(k);
    rng.fill(t);
    memory::GuestMemory mem(96 * kMiB, kSpaBase, 3);
    mem.attachEncryption(std::make_unique<crypto::XexCipher>(k, t));
    claim(mem, 0, 96 * kMiB);

    ASSERT_TRUE(mem.guestWrite(0x3000000, art_.bzimage, true).isOk());
    Result<LoadedKernel> loaded =
        runBootstrapLoader(mem, 0x3000000, art_.bzimage.size(), true);
    ASSERT_TRUE(loaded.isOk()) << loaded.status().toString();
    EXPECT_EQ(loaded->entry, art_.entry);

    // Kernel text is plaintext for the guest, ciphertext for the host.
    Result<image::ElfImage> elf = image::parseElf(art_.vmlinux);
    const image::ElfSegment &seg0 = elf->segments[0];
    EXPECT_EQ(*mem.guestRead(seg0.vaddr, 64, true),
              ByteVec(seg0.data.begin(), seg0.data.begin() + 64));
    EXPECT_NE(*mem.hostRead(seg0.vaddr, 64),
              ByteVec(seg0.data.begin(), seg0.data.begin() + 64));
}

TEST_F(BootstrapLoaderTest, CorruptImageRejected)
{
    memory::GuestMemory mem(64 * kMiB, kSpaBase, 0);
    ByteVec evil = art_.bzimage;
    evil[0x202] = 'X'; // break HdrS
    ASSERT_TRUE(mem.hostWrite(0x2000000, evil).isOk());
    EXPECT_FALSE(
        runBootstrapLoader(mem, 0x2000000, evil.size(), false).isOk());
}

TEST_F(BootstrapLoaderTest, DirectVmlinuxLoad)
{
    memory::GuestMemory mem(64 * kMiB, kSpaBase, 0);
    ASSERT_TRUE(mem.hostWrite(0x2000000, art_.vmlinux).isOk());
    Result<LoadedKernel> loaded =
        loadVmlinuxAt(mem, 0x2000000, art_.vmlinux.size(), false);
    ASSERT_TRUE(loaded.isOk());
    EXPECT_EQ(loaded->entry, art_.entry);
}


TEST_F(BootstrapLoaderTest, GuestKaslrSlidesKernel)
{
    memory::GuestMemory mem(128 * kMiB, kSpaBase, 0);
    ASSERT_TRUE(mem.hostWrite(0x4000000, art_.bzimage).isOk());

    KaslrConfig kaslr;
    kaslr.enabled = true;
    kaslr.seed = 0xabc;
    kaslr.max_slide = 16 * kMiB;
    Result<LoadedKernel> loaded = runBootstrapLoader(
        mem, 0x4000000, art_.bzimage.size(), false, kaslr);
    ASSERT_TRUE(loaded.isOk()) << loaded.status().toString();
    EXPECT_EQ(loaded->kaslr_slide % kHugePageSize, 0u);
    EXPECT_LT(loaded->kaslr_slide, 16 * kMiB);
    EXPECT_EQ(loaded->entry, art_.entry + loaded->kaslr_slide);

    // The kernel text actually lives at the slid address.
    Result<image::ElfImage> elf = image::parseElf(art_.vmlinux);
    const image::ElfSegment &seg0 = elf->segments[0];
    EXPECT_EQ(*mem.hostRead(seg0.vaddr + loaded->kaslr_slide, 64),
              ByteVec(seg0.data.begin(), seg0.data.begin() + 64));
}

TEST_F(BootstrapLoaderTest, KaslrSeedsProduceDifferentSlides)
{
    // Not all seeds may differ (small slot count), but across a few
    // seeds at least two distinct slides must appear.
    memory::GuestMemory mem(128 * kMiB, kSpaBase, 0);
    ASSERT_TRUE(mem.hostWrite(0x4000000, art_.bzimage).isOk());
    std::set<u64> slides;
    for (u64 seed : {1u, 2u, 3u, 4u, 5u, 6u, 7u, 8u}) {
        KaslrConfig kaslr{true, seed, 32 * kMiB};
        Result<LoadedKernel> loaded = runBootstrapLoader(
            mem, 0x4000000, art_.bzimage.size(), false, kaslr);
        ASSERT_TRUE(loaded.isOk());
        slides.insert(loaded->kaslr_slide);
    }
    EXPECT_GT(slides.size(), 2u);
}

TEST_F(BootstrapLoaderTest, KaslrDisabledMeansZeroSlide)
{
    memory::GuestMemory mem(64 * kMiB, kSpaBase, 0);
    ASSERT_TRUE(mem.hostWrite(0x2000000, art_.bzimage).isOk());
    Result<LoadedKernel> loaded = runBootstrapLoader(
        mem, 0x2000000, art_.bzimage.size(), false, KaslrConfig{});
    ASSERT_TRUE(loaded.isOk());
    EXPECT_EQ(loaded->kaslr_slide, 0u);
    EXPECT_EQ(loaded->entry, art_.entry);
}

// ------------------------------------------------------------ attestation

TEST(AttestationClientTest, EndToEndProvisioning)
{
    psp::KeyServer ks;
    psp::Psp psp("CHIP-GUEST", ks, 0xabcd);
    memory::GuestMemory mem(4 * kMiB, kSpaBase, psp.allocateAsid());
    psp::GuestHandle handle = *psp.launchStart(mem, 0);

    // Measure one page so there is a non-trivial launch digest.
    ByteVec page(kPageSize, 0x5a);
    ASSERT_TRUE(mem.hostWrite(0, page).isOk());
    ASSERT_TRUE(psp.launchUpdateData(handle, mem, 0, kPageSize).isOk());
    ASSERT_TRUE(psp.launchFinish(handle).isOk());

    claim(mem, 0x2000, kPageSize);
    ByteVec secret = toBytes("root-disk-luks-key");
    attest::GuestOwner owner(ks, *psp.launchMeasure(handle), secret, 7);

    Result<AttestationOutcome> out =
        runAttestation(psp, handle, mem, 0x2000, owner, 0x11);
    ASSERT_TRUE(out.isOk()) << out.status().toString();
    EXPECT_EQ(out->secret_size, secret.size());
    // Secret sits in encrypted memory.
    EXPECT_EQ(*mem.guestRead(0x2000, secret.size(), true), secret);
    EXPECT_NE(*mem.hostRead(0x2000, secret.size()), secret);
}

TEST(AttestationClientTest, WrongExpectedMeasurementFails)
{
    psp::KeyServer ks;
    psp::Psp psp("CHIP-GUEST2", ks, 0xabce);
    memory::GuestMemory mem(4 * kMiB, kSpaBase, psp.allocateAsid());
    psp::GuestHandle handle = *psp.launchStart(mem, 0);
    ASSERT_TRUE(psp.launchFinish(handle).isOk());

    crypto::Sha256Digest wrong{};
    wrong.fill(0xee);
    attest::GuestOwner owner(ks, wrong, toBytes("s"), 7);
    claim(mem, 0x2000, kPageSize);
    Result<AttestationOutcome> out =
        runAttestation(psp, handle, mem, 0x2000, owner, 0x11);
    ASSERT_FALSE(out.isOk());
    EXPECT_EQ(out.status().code(), ErrorCode::kIntegrityFailure);
}

TEST(AttestationClientTest, ReportBeforeFinishFails)
{
    psp::KeyServer ks;
    psp::Psp psp("CHIP-GUEST3", ks, 0xabcf);
    memory::GuestMemory mem(4 * kMiB, kSpaBase, psp.allocateAsid());
    psp::GuestHandle handle = *psp.launchStart(mem, 0);
    attest::GuestOwner owner(ks, crypto::Sha256Digest{}, toBytes("s"), 7);
    Result<AttestationOutcome> out =
        runAttestation(psp, handle, mem, 0x2000, owner, 0x11);
    ASSERT_FALSE(out.isOk());
    EXPECT_EQ(out.status().code(), ErrorCode::kInvalidState);
}

} // namespace
} // namespace sevf::guest
