/**
 * @file
 * Canonical Huffman + bitstream unit tests (the entropy stage of the
 * gzip-lite codec).
 */
#include <gtest/gtest.h>

#include <cmath>

#include "base/rng.h"
#include "compress/bitstream.h"
#include "compress/huffman.h"

namespace sevf::compress {
namespace {

TEST(BitStream, RoundTripVariousWidths)
{
    BitWriter w;
    w.put(0b1, 1);
    w.put(0b1010, 4);
    w.put(0xdead, 16);
    w.put(0x3, 2);
    ByteVec bytes = w.finish();

    BitReader r(bytes);
    EXPECT_EQ(*r.get(1), 0b1u);
    EXPECT_EQ(*r.get(4), 0b1010u);
    EXPECT_EQ(*r.get(16), 0xdeadu);
    EXPECT_EQ(*r.get(2), 0x3u);
}

TEST(BitStream, ReadPastEndFails)
{
    BitWriter w;
    w.put(0xff, 8);
    ByteVec bytes = w.finish();
    BitReader r(bytes);
    EXPECT_TRUE(r.get(8).isOk());
    EXPECT_FALSE(r.get(1).isOk());
}

TEST(Huffman, LengthsRespectLimitEvenForSkewedInput)
{
    // Fibonacci-ish frequencies force deep trees without limiting.
    std::vector<u64> freqs(40, 0);
    u64 a = 1, b = 1;
    for (std::size_t i = 0; i < freqs.size(); ++i) {
        freqs[i] = a;
        u64 next = a + b;
        a = b;
        b = next;
    }
    std::vector<u8> lengths = huffmanCodeLengths(freqs);
    for (u8 len : lengths) {
        EXPECT_LE(len, kMaxHuffmanBits);
        EXPECT_GE(len, 1);
    }
}

TEST(Huffman, KraftInequalityHolds)
{
    Rng rng(3);
    std::vector<u64> freqs(300);
    for (u64 &f : freqs) {
        f = rng.nextBelow(10000);
    }
    std::vector<u8> lengths = huffmanCodeLengths(freqs);
    double kraft = 0;
    for (std::size_t s = 0; s < freqs.size(); ++s) {
        if (lengths[s] > 0) {
            kraft += std::pow(2.0, -static_cast<double>(lengths[s]));
        }
        EXPECT_EQ(lengths[s] == 0, freqs[s] == 0);
    }
    EXPECT_LE(kraft, 1.0 + 1e-9);
}

TEST(Huffman, EncodeDecodeRoundTrip)
{
    Rng rng(7);
    std::vector<u64> freqs(64);
    for (u64 &f : freqs) {
        f = 1 + rng.nextBelow(1000);
    }
    std::vector<u8> lengths = huffmanCodeLengths(freqs);
    HuffmanEncoder enc(lengths);
    Result<HuffmanDecoder> dec = HuffmanDecoder::build(lengths);
    ASSERT_TRUE(dec.isOk());

    std::vector<u32> symbols;
    for (int i = 0; i < 5000; ++i) {
        symbols.push_back(static_cast<u32>(rng.nextBelow(64)));
    }
    BitWriter w;
    for (u32 s : symbols) {
        enc.encode(w, s);
    }
    ByteVec bytes = w.finish();
    BitReader r(bytes);
    for (u32 expected : symbols) {
        Result<u32> got = dec->decode(r);
        ASSERT_TRUE(got.isOk());
        EXPECT_EQ(*got, expected);
    }
}

TEST(Huffman, FrequentSymbolsGetShorterCodes)
{
    std::vector<u64> freqs(4, 0);
    freqs[0] = 1000;
    freqs[1] = 10;
    freqs[2] = 10;
    freqs[3] = 1;
    std::vector<u8> lengths = huffmanCodeLengths(freqs);
    EXPECT_LT(lengths[0], lengths[3]);
}

TEST(Huffman, SingleSymbolAlphabet)
{
    std::vector<u64> freqs(10, 0);
    freqs[4] = 123;
    std::vector<u8> lengths = huffmanCodeLengths(freqs);
    EXPECT_EQ(lengths[4], 1);
    HuffmanEncoder enc(lengths);
    Result<HuffmanDecoder> dec = HuffmanDecoder::build(lengths);
    ASSERT_TRUE(dec.isOk());
    BitWriter w;
    enc.encode(w, 4);
    ByteVec bytes = w.finish();
    BitReader r(bytes);
    EXPECT_EQ(*dec->decode(r), 4u);
}

TEST(Huffman, OverSubscribedCodeRejected)
{
    // Three symbols of length 1 cannot coexist.
    std::vector<u8> lengths = {1, 1, 1};
    EXPECT_FALSE(HuffmanDecoder::build(lengths).isOk());
}

} // namespace
} // namespace sevf::compress
