/**
 * @file
 * Image-format tests: ELF64 writer/parser, bzImage boot protocol, and
 * CPIO newc archives, including malformed-input rejection.
 */
#include <cstring>

#include <gtest/gtest.h>

#include "base/bytes.h"
#include "base/rng.h"
#include "image/bzimage.h"
#include "image/cpio.h"
#include "image/elf.h"

namespace sevf::image {
namespace {

ByteVec
randomBytes(std::size_t n, u64 seed)
{
    ByteVec out(n);
    Rng rng(seed);
    rng.fill(out);
    return out;
}

ElfImage
sampleImage()
{
    ElfImage elf;
    elf.entry = 0x1000200;
    ElfSegment text;
    text.vaddr = 0x1000000;
    text.flags = kPfR | kPfX;
    text.data = randomBytes(10000, 1);
    text.memsz = 10000;
    ElfSegment data;
    data.vaddr = 0x1100000;
    data.flags = kPfR | kPfW;
    data.data = randomBytes(5000, 2);
    data.memsz = 9000; // 4000 bytes of BSS
    elf.segments = {text, data};
    return elf;
}

// ---------------------------------------------------------------- ELF

TEST(Elf, WriteParseRoundTrip)
{
    ElfImage elf = sampleImage();
    ByteVec file = writeElf(elf);
    Result<ElfImage> back = parseElf(file);
    ASSERT_TRUE(back.isOk()) << back.status().toString();
    EXPECT_EQ(back->entry, elf.entry);
    ASSERT_EQ(back->segments.size(), 2u);
    EXPECT_EQ(back->segments[0].vaddr, 0x1000000u);
    EXPECT_EQ(back->segments[0].data, elf.segments[0].data);
    EXPECT_EQ(back->segments[1].memsz, 9000u);
    EXPECT_EQ(back->segments[1].flags, kPfR | kPfW);
}

TEST(Elf, HelpersComputeGeometry)
{
    ElfImage elf = sampleImage();
    EXPECT_EQ(elf.fileBytes(), 15000u);
    EXPECT_EQ(elf.loadEnd(), 0x1100000u + 9000u);
}

TEST(Elf, HeaderOnlyParse)
{
    ByteVec file = writeElf(sampleImage());
    Result<ElfLayout> layout = parseElfHeader(file);
    ASSERT_TRUE(layout.isOk());
    EXPECT_EQ(layout->entry, 0x1000200u);
    EXPECT_EQ(layout->phnum, 2u);
    EXPECT_EQ(layout->phoff, kEhdrSize);

    Result<ElfPhdr> p0 =
        parseElfPhdr(ByteSpan(file).subspan(layout->phoff, kPhdrSize));
    ASSERT_TRUE(p0.isOk());
    EXPECT_EQ(p0->type, kPtLoad);
    EXPECT_EQ(p0->vaddr, 0x1000000u);
    EXPECT_EQ(p0->filesz, 10000u);
}

TEST(Elf, SegmentsPageAlignedInFile)
{
    ByteVec file = writeElf(sampleImage());
    Result<ElfLayout> layout = parseElfHeader(file);
    ASSERT_TRUE(layout.isOk());
    for (u16 i = 0; i < layout->phnum; ++i) {
        Result<ElfPhdr> p = parseElfPhdr(
            ByteSpan(file).subspan(layout->phoff + i * kPhdrSize, kPhdrSize));
        ASSERT_TRUE(p.isOk());
        EXPECT_EQ(p->offset % kPageSize, 0u);
    }
}

TEST(Elf, RejectsBadMagic)
{
    ByteVec file = writeElf(sampleImage());
    file[0] = 0x7e;
    EXPECT_FALSE(parseElf(file).isOk());
}

TEST(Elf, Rejects32Bit)
{
    ByteVec file = writeElf(sampleImage());
    file[4] = 1; // ELFCLASS32
    EXPECT_FALSE(parseElf(file).isOk());
}

TEST(Elf, RejectsWrongMachine)
{
    ByteVec file = writeElf(sampleImage());
    file[18] = 40; // EM_ARM
    EXPECT_FALSE(parseElf(file).isOk());
}

TEST(Elf, RejectsTruncatedSegment)
{
    ByteVec file = writeElf(sampleImage());
    file.resize(file.size() - 3000);
    EXPECT_FALSE(parseElf(file).isOk());
}

TEST(Elf, RejectsTooShort)
{
    ByteVec file = {0x7f, 'E', 'L', 'F'};
    EXPECT_FALSE(parseElf(file).isOk());
}

TEST(Elf, NoLoadSegmentsRejected)
{
    ElfImage elf;
    elf.entry = 0x1000;
    // Header-only ELF with zero phdrs.
    ByteVec file = writeElf(elf);
    EXPECT_FALSE(parseElf(file).isOk());
}

TEST(Elf, ZeroLengthSegmentDataRoundTrips)
{
    ElfImage elf;
    elf.entry = 0x1000;
    ElfSegment bss_only;
    bss_only.vaddr = 0x2000;
    bss_only.memsz = 4096; // pure BSS
    ElfSegment text;
    text.vaddr = 0x1000;
    text.data = toBytes("code");
    text.memsz = 4;
    elf.segments = {bss_only, text};
    Result<ElfImage> back = parseElf(writeElf(elf));
    ASSERT_TRUE(back.isOk());
    EXPECT_EQ(back->segments[0].data.size(), 0u);
    EXPECT_EQ(back->segments[0].memsz, 4096u);
}


TEST(Elf, RejectsPhdrTablePastEnd)
{
    ByteVec file = writeElf(sampleImage());
    // e_phnum lives at offset 56; an absurd count pushes the program
    // header table past the end of the file.
    storeLe<u16>(file.data() + 56, 0xffff);
    EXPECT_FALSE(parseElf(file).isOk());
}

TEST(Elf, RejectsWrongPhentsize)
{
    ByteVec file = writeElf(sampleImage());
    storeLe<u16>(file.data() + 54, kPhdrSize + 8);
    EXPECT_FALSE(parseElfHeader(file).isOk());
}

TEST(Elf, RejectsMemszSmallerThanFilesz)
{
    ByteVec file = writeElf(sampleImage());
    // First phdr starts at kEhdrSize; p_memsz is its 6th 8-byte field.
    storeLe<u64>(file.data() + kEhdrSize + 40, 1);
    EXPECT_FALSE(parseElf(file).isOk());
}

TEST(Elf, RejectsTruncatedPhdrSpan)
{
    ByteVec file = writeElf(sampleImage());
    EXPECT_FALSE(parseElfPhdr(ByteSpan(file.data(), 10)).isOk());
}

// ------------------------------------------------------------- bzImage

class BzImageTest : public ::testing::Test
{
  protected:
    BzImageTest() : vmlinux_(writeElf(sampleImage())) {}

    ByteVec vmlinux_;
};

TEST_F(BzImageTest, BuildParseRoundTrip)
{
    ByteVec bz = buildBzImage(vmlinux_, {});
    Result<BzImageInfo> info = parseBzImage(bz);
    ASSERT_TRUE(info.isOk()) << info.status().toString();
    EXPECT_EQ(info->version, kBootProtocolVersion);
    EXPECT_EQ(info->codec, compress::CodecKind::kLz4);
    EXPECT_EQ(info->pm_offset, 4 * kSectorSize);
    EXPECT_GT(info->init_size, vmlinux_.size());
}

TEST_F(BzImageTest, ExtractVmlinuxRecoversOriginal)
{
    ByteVec bz = buildBzImage(vmlinux_, {});
    Result<ByteVec> extracted = extractVmlinux(bz);
    ASSERT_TRUE(extracted.isOk());
    EXPECT_EQ(*extracted, vmlinux_);

    // And the extracted bytes are again a loadable ELF.
    Result<ElfImage> elf = parseElf(*extracted);
    ASSERT_TRUE(elf.isOk());
    EXPECT_EQ(elf->entry, 0x1000200u);
}

TEST_F(BzImageTest, CodecChoiceIsRecorded)
{
    BzImageBuildConfig cfg;
    cfg.codec = compress::CodecKind::kLzss;
    ByteVec bz = buildBzImage(vmlinux_, cfg);
    Result<BzImageInfo> info = parseBzImage(bz);
    ASSERT_TRUE(info.isOk());
    EXPECT_EQ(info->codec, compress::CodecKind::kLzss);
    EXPECT_EQ(*extractVmlinux(bz), vmlinux_);
}

TEST_F(BzImageTest, CompressionShrinksCompressibleKernel)
{
    // A zero-heavy "kernel" must produce a much smaller bzImage.
    ByteVec soft(1 * kMiB, 0);
    ByteVec bz = buildBzImage(soft, {});
    EXPECT_LT(bz.size(), soft.size() / 4);
}

TEST_F(BzImageTest, RejectsMissingBootFlag)
{
    ByteVec bz = buildBzImage(vmlinux_, {});
    bz[0x1fe] = 0;
    EXPECT_FALSE(parseBzImage(bz).isOk());
}

TEST_F(BzImageTest, RejectsMissingHdrS)
{
    ByteVec bz = buildBzImage(vmlinux_, {});
    bz[0x202] = 'X';
    EXPECT_FALSE(parseBzImage(bz).isOk());
}

TEST_F(BzImageTest, RejectsTruncatedPayload)
{
    ByteVec bz = buildBzImage(vmlinux_, {});
    bz.resize(bz.size() - 100);
    EXPECT_FALSE(parseBzImage(bz).isOk());
}

TEST_F(BzImageTest, RejectsTinyFile)
{
    ByteVec tiny(100, 0);
    EXPECT_FALSE(parseBzImage(tiny).isOk());
}

TEST_F(BzImageTest, CorruptPayloadFailsExtraction)
{
    ByteVec bz = buildBzImage(vmlinux_, {});
    Result<BzImageInfo> info = parseBzImage(bz);
    ASSERT_TRUE(info.isOk());
    // Flip bytes in the middle of the compressed stream.
    std::size_t off = info->pm_offset + info->payload_offset + 100;
    bz[off] ^= 0xff;
    bz[off + 1] ^= 0xff;
    Result<ByteVec> extracted = extractVmlinux(bz);
    // Either the decode fails or the output differs; both count as a
    // detected corruption for the loader (which re-hashes anyway).
    if (extracted.isOk()) {
        EXPECT_NE(*extracted, vmlinux_);
    }
}


TEST_F(BzImageTest, RejectsHugePayloadOffset)
{
    ByteVec bz = buildBzImage(vmlinux_, {});
    // A payload_offset pointing far past the file must be rejected even
    // though payload_length alone still fits.
    storeLe<u32>(bz.data() + 0x248, 0x7fffffff);
    EXPECT_FALSE(parseBzImage(bz).isOk());
    EXPECT_FALSE(bzImagePayload(bz).isOk());
    EXPECT_FALSE(extractVmlinux(bz).isOk());
}

TEST_F(BzImageTest, RejectsHugePayloadLength)
{
    ByteVec bz = buildBzImage(vmlinux_, {});
    storeLe<u32>(bz.data() + 0x24c, 0xf0000000);
    EXPECT_FALSE(parseBzImage(bz).isOk());
    EXPECT_FALSE(bzImagePayload(bz).isOk());
}

TEST_F(BzImageTest, RejectsPreNoPayloadProtocol)
{
    ByteVec bz = buildBzImage(vmlinux_, {});
    storeLe<u16>(bz.data() + 0x206, 0x0207);
    EXPECT_FALSE(parseBzImage(bz).isOk());
}

// ---------------------------------------------------------------- CPIO

TEST(Cpio, RoundTrip)
{
    std::vector<CpioEntry> entries;
    entries.push_back({"init", 0100755, toBytes("#!/bin/sh\nexec attest\n")});
    entries.push_back({"bin/tool", 0100755, randomBytes(5000, 9)});
    entries.push_back({"etc/empty", 0100644, {}});

    ByteVec archive = writeCpio(entries);
    EXPECT_EQ(archive.size() % 512, 0u);

    Result<std::vector<CpioEntry>> back = parseCpio(archive);
    ASSERT_TRUE(back.isOk()) << back.status().toString();
    ASSERT_EQ(back->size(), 3u);
    EXPECT_EQ((*back)[0].name, "init");
    EXPECT_EQ((*back)[1].data, entries[1].data);
    EXPECT_EQ((*back)[2].data.size(), 0u);
    EXPECT_EQ((*back)[0].mode, 0100755u);
}

TEST(Cpio, FindEntry)
{
    std::vector<CpioEntry> entries;
    entries.push_back({"init", 0100755, toBytes("x")});
    entries.push_back({"bin/tool", 0100755, toBytes("y")});
    EXPECT_NE(findEntry(entries, "bin/tool"), nullptr);
    EXPECT_EQ(findEntry(entries, "missing"), nullptr);
}

TEST(Cpio, EmptyArchiveHasOnlyTrailer)
{
    ByteVec archive = writeCpio({});
    Result<std::vector<CpioEntry>> back = parseCpio(archive);
    ASSERT_TRUE(back.isOk());
    EXPECT_TRUE(back->empty());
}

TEST(Cpio, RejectsBadMagic)
{
    ByteVec archive = writeCpio({{"f", 0100644, toBytes("d")}});
    archive[0] = 'X';
    EXPECT_FALSE(parseCpio(archive).isOk());
}

TEST(Cpio, RejectsTruncation)
{
    ByteVec archive =
        writeCpio({{"file", 0100644, randomBytes(1000, 3)}});
    ByteVec cut(archive.begin(), archive.begin() + 300);
    EXPECT_FALSE(parseCpio(cut).isOk());
}

TEST(Cpio, RejectsMissingTrailer)
{
    // An archive cut exactly after the first entry (no TRAILER!!!).
    std::vector<CpioEntry> entries{{"a", 0100644, toBytes("zz")}};
    ByteVec full = writeCpio(entries);
    // Find the trailer by parsing; cut just before it.
    // Entry: 110 hdr + 2 name + pad(4) + 2 data + pad -> locate trailer magic.
    std::string hay(full.begin(), full.end());
    std::size_t trailer_pos = hay.find("TRAILER!!!");
    ASSERT_NE(trailer_pos, std::string::npos);
    ByteVec cut(full.begin(),
                full.begin() + static_cast<long>(trailer_pos) - 110);
    EXPECT_FALSE(parseCpio(cut).isOk());
}

TEST(Cpio, RejectsNonHexHeaderField)
{
    ByteVec archive = writeCpio({{"f", 0100644, toBytes("d")}});
    archive[6 + 8 * 11 + 1] = 'Z'; // inside c_namesize (a parsed field)
    EXPECT_FALSE(parseCpio(archive).isOk());
}


TEST(Cpio, RejectsZeroNamesize)
{
    ByteVec archive = writeCpio({{"f", 0100644, toBytes("d")}});
    // c_namesize is header field 11: bytes [6 + 88, 6 + 96).
    std::memcpy(archive.data() + 6 + 8 * 11, "00000000", 8);
    EXPECT_FALSE(parseCpio(archive).isOk());
}

TEST(Cpio, RejectsNamePastEnd)
{
    ByteVec archive = writeCpio({{"f", 0100644, toBytes("d")}});
    std::memcpy(archive.data() + 6 + 8 * 11, "000FFFFF", 8);
    EXPECT_FALSE(parseCpio(archive).isOk());
}

TEST(Cpio, RejectsDataPastEnd)
{
    ByteVec archive = writeCpio({{"f", 0100644, toBytes("d")}});
    // c_filesize is header field 6: bytes [6 + 48, 6 + 56).
    std::memcpy(archive.data() + 6 + 8 * 6, "000FFFFF", 8);
    EXPECT_FALSE(parseCpio(archive).isOk());
}

} // namespace
} // namespace sevf::image
