/* Deliberately uses every banned construct. */

int
fixtureBanned(int n)
{
    if (n < 0) {
        throw 42;
    }
    int *scratch = new int[8];
    scratch[0] = rand();
    return scratch[0];
}
