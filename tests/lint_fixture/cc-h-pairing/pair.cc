/* Deliberately includes something other than its paired header first. */
#include "sub/other.h"

int
fixturePair()
{
    return fixtureOther();
}
