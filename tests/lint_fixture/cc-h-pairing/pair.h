#ifndef SEVF_PAIR_H_
#define SEVF_PAIR_H_

int fixturePair();

#endif // SEVF_PAIR_H_
