#ifndef SEVF_SUB_OTHER_H_
#define SEVF_SUB_OTHER_H_

int fixtureOther();

#endif // SEVF_SUB_OTHER_H_
