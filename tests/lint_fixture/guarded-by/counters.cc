/*
 * Seeded-defect fixture for the guarded-by (lockset) pass: the
 * unlocked field access and the SEVF_REQUIRES call without the lock
 * must both be flagged; the locked variants must stay clean.
 */

namespace fixture {

struct Counters {
    base::Mutex mu;
    long hits SEVF_GUARDED_BY(mu) = 0;
    long misses SEVF_GUARDED_BY(mu) = 0;

    void
    bumpLocked()
    {
        base::MutexLock lock(mu);
        ++hits;
    }

    void
    bumpUnlocked()
    {
        ++misses; // BUG: mu not held
    }
};

void
touchBoth(Counters &c) SEVF_REQUIRES(c.mu)
{
    ++c.hits;
    ++c.misses;
}

void
requiresWithLock(Counters &c)
{
    base::MutexLock lock(c.mu);
    touchBoth(c);
}

void
requiresWithoutLock(Counters &c)
{
    touchBoth(c); // BUG: c.mu not held
}

} // namespace fixture
