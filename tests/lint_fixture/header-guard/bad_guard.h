/* Deliberately wrong include guard: should be SEVF_BAD_GUARD_H_. */
#ifndef TOTALLY_WRONG_GUARD_H
#define TOTALLY_WRONG_GUARD_H

int fixtureValue();

#endif
