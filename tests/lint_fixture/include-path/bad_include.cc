/* Deliberately parent-relative and bare includes. */
#include "../escape/outside.h"

int
fixtureBadInclude()
{
    return 1;
}
