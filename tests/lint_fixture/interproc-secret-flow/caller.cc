/*
 * Interprocedural secret-flow fixture, caller TU: both leaks cross a
 * function boundary (a secret-returning callee, a sink-forwarding
 * parameter) and must be reported as interproc-secret-flow. The
 * declassified flow must stay clean.
 */

namespace fixture {

void
leakDerivedKey(unsigned long salt)
{
    auto key = rewrapSessionKey(salt);
    inform("session key ", key); // BUG: summary-tainted value into sink
}

void
leakThroughForwarder(unsigned long salt)
{
    auto key = dhSharedKey(salt);
    logPayload(key); // BUG: tainted argument into sink-forwarding param
}

void
declassifiedInterprocIsClean(unsigned long salt)
{
    auto key = rewrapSessionKey(salt);
    declassify(key, "fixture: reviewed boundary");
    inform("session key fingerprint ", key);
}

} // namespace fixture
