/*
 * Interprocedural secret-flow fixture, helper TU. None of these
 * functions is a violation by itself; the summary pass must classify
 * deriveSessionKey and rewrapSessionKey (two hops, so the fixed point
 * matters) as secret-returning and logPayload's parameter as
 * sink-forwarding. caller.cc holds the actual leaks.
 */

namespace fixture {

unsigned long
deriveSessionKey(unsigned long salt)
{
    auto key = dhSharedKey(salt);
    return key;
}

unsigned long
rewrapSessionKey(unsigned long salt)
{
    auto wrapped = deriveSessionKey(salt);
    return wrapped;
}

void
logPayload(unsigned long data)
{
    inform("payload ", data);
}

} // namespace fixture
