/*
 * Seeded-defect fixture for the lock-order pass, half one: nests
 * Device::reg_mu -> Device::queue_mu. On its own this is a legal
 * (undeclared) ordering; ba.cc nests the same pair the other way
 * around, closing a cross-file cycle the pass must report.
 */

namespace fixture {

struct Device {
    base::Mutex reg_mu;
    base::Mutex queue_mu;
    int regs SEVF_GUARDED_BY(reg_mu) = 0;
    int queue_depth SEVF_GUARDED_BY(queue_mu) = 0;
};

void
resetThenDrain(Device &d)
{
    base::MutexLock reg_lock(d.reg_mu);
    d.regs = 0;
    base::MutexLock queue_lock(d.queue_mu);
    d.queue_depth = 0;
}

} // namespace fixture
