/*
 * Seeded-defect fixture for the lock-order pass, half two: nests
 * Device::queue_mu -> Device::reg_mu, the reverse of ab.cc. The cycle
 * only exists across the two translation units, so catching it
 * exercises the cross-TU acquisition graph.
 */

namespace fixture {

void
drainThenReset(Device &d)
{
    base::MutexLock queue_lock(d.queue_mu);
    d.queue_depth = 0;
    base::MutexLock reg_lock(d.reg_mu);
    d.regs = 0;
}

} // namespace fixture
