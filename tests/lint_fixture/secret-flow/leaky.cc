/*
 * Deliberately leaky fixture: the secret-flow rule must flag every
 * flow below. A variable assigned from a secret-source function
 * (dhSharedKey, open, keyFor) must not reach a logging/serialization
 * sink without declassify().
 */

void
leakChannelKeyToLog()
{
    auto channel = dhSharedKey(private_exponent, peer_public);
    inform("derived channel key ", channel);
}

void
leakUnsealedSecretThroughHex()
{
    auto secret = open(channel_key, sealed);
    auto rendered = toHex(secret);
    debug.record(now, rendered);
}

void
leakSourceDirectlyIntoSink()
{
    inform("chip key: ", keyFor(chip_id));
}

void
declassifiedFlowIsClean()
{
    auto channel = dhSharedKey(private_exponent, peer_public);
    declassify(channel, "fixture: reviewed boundary");
    inform("fingerprint ", channel);
}
