/*
 * Rule-breaking concurrency and interprocedural flows, every finding
 * suppressed: this directory must lint clean, and every marker must be
 * consumed (a stale one would trip unused-suppression).
 */

namespace fixture {

struct Gauge2 {
    base::Mutex mu;
    long level SEVF_GUARDED_BY(mu) = 0;

    void
    poke()
    {
        ++level; // sevf_lint: allow(guarded-by)
    }
};

struct Pair2 {
    base::Mutex a_mu;
    base::Mutex b_mu;
};

void
forward2(Pair2 &p)
{
    base::MutexLock a(p.a_mu);
    base::MutexLock b(p.b_mu); // sevf_lint: allow(lock-order)
}

void
backward2(Pair2 &p)
{
    base::MutexLock b(p.b_mu);
    base::MutexLock a(p.a_mu); // sevf_lint: allow(lock-order)
}

unsigned long
makeKey2(unsigned long salt)
{
    auto key = dhSharedKey(salt);
    return key;
}

void
noteKey2(unsigned long salt)
{
    auto key = makeKey2(salt);
    inform("key ", key); // sevf_lint: allow(interproc-secret-flow)
}

} // namespace fixture
