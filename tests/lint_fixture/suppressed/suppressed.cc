/* Rule-breaking code with valid suppression comments: must lint clean. */

int
fixtureSuppressed(int n)
{
    if (n < 0) {
        throw 42; // sevf_lint: allow(banned-construct)
    }
    // sevf_lint: allow(banned-construct)
    return rand();
}
