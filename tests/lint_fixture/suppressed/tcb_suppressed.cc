// Fixture: trust-zone annotations that must all be consumed, leaving
// the directory clean. stopAtBoundary is reached from the entry point,
// so its SEVF_TCB_EXEMPT is live; the subscript suppression is consumed
// by the untrusted-bounds pass.
namespace fixture {

int
stopAtBoundary(int x) SEVF_TCB_EXEMPT
{
    return x * 3;
}

int
enterTcb(int x) SEVF_TCB
{
    return stopAtBoundary(x);
}

int
readRawByte(const unsigned char *data, unsigned long off)
    SEVF_UNTRUSTED_INPUT
{
    // Caller contract: off was validated against the frame header.
    return data[off]; // sevf_lint: allow(untrusted-bounds)
}

} // namespace fixture
