// Fixture: the closure holds two functions but ./tcb-budget.txt allows
// one, so the audit must trip tcb-budget.
namespace fixture {

int
helperStep(int x)
{
    return x - 1;
}

int
runEntry(int x) SEVF_TCB
{
    return helperStep(x);
}

} // namespace fixture
