// Fixture: dynamic allocation inside the TCB closure must trip
// tcb-construct (the measured bootstrap is allocation-free).
namespace fixture {

int
grabScratch(unsigned long n) SEVF_TCB
{
    void *p = malloc(n);
    free(p);
    return p != 0;
}

} // namespace fixture
