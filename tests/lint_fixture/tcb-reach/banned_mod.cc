// Fixture: stands in for compress/gzip_lite - a module the TCB closure
// must never reach (banned in ./tcb-budget.txt).
namespace fixture {

int
inflateChunk(int window)
{
    return window * 2;
}

} // namespace fixture
