// Fixture: an SEVF_TCB entry point whose closure crosses into a module
// banned by this directory's tcb-budget.txt. The boundary call below
// must trip tcb-reach.
namespace fixture {

int
verifyBoot(int staged)
{
    return staged + 1;
}

int
runEntry(int staged) SEVF_TCB
{
    int checked = verifyBoot(staged);
    return inflateChunk(checked);
}

} // namespace fixture
