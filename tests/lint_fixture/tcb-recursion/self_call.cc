// Fixture: a call-graph cycle inside the TCB closure must trip
// tcb-recursion (the bootstrap runs on a fixed-depth stack).
namespace fixture {

int
descend(int n) SEVF_TCB
{
    if (n <= 0) {
        return 0;
    }
    return descend(n - 1);
}

} // namespace fixture
