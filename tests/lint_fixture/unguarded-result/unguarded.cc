/* Deliberately dereferences a Result without checking it. */

template <typename T>
class Result;

Result<int> fetch();

int
fixtureUnguarded()
{
    Result<int> r = fetch();
    return r.value();
}
