// Fixture: a header-supplied offset used to index the input without a
// preceding bounds check must trip untrusted-bounds; the checked read
// below it must not.
namespace fixture {

int
readFieldUnchecked(const unsigned char *data, unsigned long off)
    SEVF_UNTRUSTED_INPUT
{
    return data[off];
}

int
readFieldChecked(const unsigned char *data, unsigned long len,
                 unsigned long off) SEVF_UNTRUSTED_INPUT
{
    if (off + 1 > len) {
        return -1;
    }
    return data[off];
}

} // namespace fixture
