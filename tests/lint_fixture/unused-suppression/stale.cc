/*
 * Fixture: suppression comments that match no violation. The
 * unused-suppression rule must flag both stale markers (the trailing
 * one and the preceding one).
 */

int
fixtureStaleSuppressions(int n)
{
    int doubled = n * 2; // sevf_lint: allow(banned-construct)
    // sevf_lint: allow(unguarded-result)
    return doubled;
}
