// Fixture: both trust-zone suppressions here are stale and must trip
// unused-suppression - the exempt function is never reached from any
// SEVF_TCB entry point, and the allow() comment sits in a function the
// untrusted-bounds pass never visits.
namespace fixture {

int
neverReached(int x) SEVF_TCB_EXEMPT
{
    return x + 7;
}

int
plainAdd(int a, int b)
{
    return a + b; // sevf_lint: allow(untrusted-bounds)
}

} // namespace fixture
