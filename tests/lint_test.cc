/**
 * @file
 * Unit tests for the sevf_lint concurrency/interprocedural engine
 * (tools/sevf_lint_engine.h): cross-TU symbol resolution, summary
 * fixed-point convergence, the guarded-by lockset pass, lock-order
 * spec + cycle checking, and suppression handling on the three
 * concurrency fixture families. The fixture self-test (sevf_lint
 * --selftest) covers the end-to-end CLI; these tests pin down engine
 * semantics at the API level where failures are easier to localize.
 */
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>
#include <unistd.h>

#include "tools/sevf_lint_engine.h"

namespace fs = std::filesystem;
using sevf::lint::LockOrderSpec;
using sevf::lint::Options;
using sevf::lint::RunResult;
using sevf::lint::Violation;

namespace {

/** A per-test scratch tree under the system temp dir, removed on exit. */
class TempTree
{
  public:
    TempTree()
    {
        static int counter = 0;
        root_ = fs::temp_directory_path() /
                ("sevf_lint_test_" + std::to_string(::getpid()) + "_" +
                 std::to_string(counter++));
        fs::create_directories(root_);
    }

    ~TempTree() { fs::remove_all(root_); }

    TempTree(const TempTree &) = delete;
    TempTree &operator=(const TempTree &) = delete;

    const fs::path &root() const { return root_; }

    void
    write(const std::string &rel, const std::string &content)
    {
        fs::path p = root_ / rel;
        fs::create_directories(p.parent_path());
        std::ofstream out(p);
        out << content;
    }

  private:
    fs::path root_;
};

std::vector<Violation>
lint(const TempTree &tree,
     std::optional<LockOrderSpec> spec = std::nullopt)
{
    Options opts;
    opts.root = tree.root();
    opts.jobs = 1;
    opts.lock_order_spec = std::move(spec);
    return sevf::lint::runLint(opts).violations;
}

size_t
countRule(const std::vector<Violation> &vs, const std::string &rule)
{
    size_t n = 0;
    for (const Violation &v : vs) {
        if (v.rule == rule) {
            ++n;
        }
    }
    return n;
}

// ---- guarded-by ----------------------------------------------------------

constexpr const char *kGuardedStruct = R"(
namespace t {

struct Counters {
    base::Mutex mu;
    long hits SEVF_GUARDED_BY(mu) = 0;

    void
    bumpLocked()
    {
        base::MutexLock lock(mu);
        ++hits;
    }

    void
    bumpUnlocked()
    {
        ++hits;
    }
};

} // namespace t
)";

TEST(LintGuardedBy, UnlockedFieldAccessFlaggedLockedClean)
{
    TempTree tree;
    tree.write("a.cc", kGuardedStruct);
    std::vector<Violation> vs = lint(tree);
    ASSERT_EQ(countRule(vs, "guarded-by"), 1u);
    for (const Violation &v : vs) {
        if (v.rule == "guarded-by") {
            EXPECT_NE(v.message.find("Counters::hits"), std::string::npos)
                << v.message;
        }
    }
}

TEST(LintGuardedBy, RequiresCallNeedsLock)
{
    TempTree tree;
    tree.write("a.cc", R"(
namespace t {

struct Box {
    base::Mutex mu;
    long v SEVF_GUARDED_BY(mu) = 0;
};

void
touch(Box &b) SEVF_REQUIRES(b.mu)
{
    ++b.v;
}

void
good(Box &b)
{
    base::MutexLock lock(b.mu);
    touch(b);
}

void
bad(Box &b)
{
    touch(b);
}

} // namespace t
)");
    std::vector<Violation> vs = lint(tree);
    ASSERT_EQ(countRule(vs, "guarded-by"), 1u);
    for (const Violation &v : vs) {
        if (v.rule == "guarded-by") {
            EXPECT_NE(v.message.find("touch"), std::string::npos);
            EXPECT_NE(v.message.find("Box::mu"), std::string::npos);
        }
    }
}

TEST(LintGuardedBy, NoThreadSafetyAnalysisExemptsFunction)
{
    TempTree tree;
    tree.write("a.cc", R"(
namespace t {

struct Counters {
    base::Mutex mu;
    long hits SEVF_GUARDED_BY(mu) = 0;

    void
    lockFree() SEVF_NO_THREAD_SAFETY_ANALYSIS
    {
        ++hits;
    }
};

} // namespace t
)");
    EXPECT_EQ(countRule(lint(tree), "guarded-by"), 0u);
}

// ---- lock-order: cross-TU resolution + cycles ----------------------------

TEST(LintLockOrder, CrossFileCycleReportedPerEdge)
{
    TempTree tree;
    // The struct lives in one TU; the reversed nesting in another. The
    // cycle only exists once both files resolve against the same
    // symbol table, so this is the multi-file resolution test too.
    tree.write("ab.cc", R"(
namespace t {

struct Device {
    base::Mutex reg_mu;
    base::Mutex queue_mu;
};

void
forward(Device &d)
{
    base::MutexLock a(d.reg_mu);
    base::MutexLock b(d.queue_mu);
}

} // namespace t
)");
    tree.write("ba.cc", R"(
namespace t {

void
backward(Device &d)
{
    base::MutexLock b(d.queue_mu);
    base::MutexLock a(d.reg_mu);
}

} // namespace t
)");
    std::vector<Violation> vs = lint(tree);
    // One violation per edge in the cycle, so each site can carry its
    // own suppression.
    EXPECT_EQ(countRule(vs, "lock-order"), 2u);
    bool in_ab = false;
    bool in_ba = false;
    for (const Violation &v : vs) {
        in_ab = in_ab || v.file == "ab.cc";
        in_ba = in_ba || v.file == "ba.cc";
    }
    EXPECT_TRUE(in_ab);
    EXPECT_TRUE(in_ba);
}

TEST(LintLockOrder, DeclaredOrderSilencesForwardFlagsReverse)
{
    TempTree tree;
    tree.write("a.cc", R"(
namespace t {

struct Device {
    base::Mutex reg_mu;
    base::Mutex queue_mu;
};

void
forward(Device &d)
{
    base::MutexLock a(d.reg_mu);
    base::MutexLock b(d.queue_mu);
}

} // namespace t
)");
    LockOrderSpec forward_spec;
    forward_spec.order.emplace_back("Device::reg_mu", "Device::queue_mu");
    EXPECT_EQ(countRule(lint(tree, forward_spec), "lock-order"), 0u);

    LockOrderSpec reverse_spec;
    reverse_spec.order.emplace_back("Device::queue_mu", "Device::reg_mu");
    std::vector<Violation> vs = lint(tree, reverse_spec);
    ASSERT_EQ(countRule(vs, "lock-order"), 1u);
    for (const Violation &v : vs) {
        EXPECT_NE(v.message.find("contradicts"), std::string::npos);
    }
}

TEST(LintLockOrder, ExclusivePairBansNestingBothWaysAndSelf)
{
    TempTree tree;
    tree.write("a.cc", R"(
namespace t {

struct Shardish {
    base::Mutex mu;
};

struct Auditish {
    base::Mutex mu;
};

void
nested(Shardish &s, Auditish &a)
{
    base::MutexLock sl(s.mu);
    base::MutexLock al(a.mu);
}

void
selfNested(Shardish &s, Shardish &t2)
{
    base::MutexLock sl(s.mu);
    base::MutexLock tl(t2.mu);
}

} // namespace t
)");
    LockOrderSpec spec;
    spec.exclusive.emplace_back("Shardish::mu", "Auditish::mu");
    spec.exclusive.emplace_back("Shardish::mu", "Shardish::mu");
    std::vector<Violation> vs = lint(tree, spec);
    EXPECT_EQ(countRule(vs, "lock-order"), 2u);
}

// ---- interprocedural secret-flow summaries -------------------------------

TEST(LintSecretFlow, SummaryChainConvergesAcrossFiles)
{
    TempTree tree;
    // Two-hop secret-returning chain split across TUs: the fixed point
    // must first classify derive(), then rewrap() on a later round.
    tree.write("helper.cc", R"(
namespace t {

unsigned long
derive(unsigned long salt)
{
    auto key = dhSharedKey(salt);
    return key;
}

unsigned long
rewrap(unsigned long salt)
{
    auto wrapped = derive(salt);
    return wrapped;
}

} // namespace t
)");
    tree.write("caller.cc", R"(
namespace t {

void
leak(unsigned long salt)
{
    auto key = rewrap(salt);
    inform("key ", key);
}

} // namespace t
)");
    std::vector<Violation> vs = lint(tree);
    EXPECT_EQ(countRule(vs, "interproc-secret-flow"), 1u);
    EXPECT_EQ(countRule(vs, "secret-flow"), 0u);
}

TEST(LintSecretFlow, MutualRecursionConverges)
{
    TempTree tree;
    // ping/pong call each other; the fixed point must terminate and
    // neither is secret-returning (no source anywhere).
    tree.write("a.cc", R"(
namespace t {

unsigned long
ping(unsigned long n)
{
    auto v = pong(n);
    return v;
}

unsigned long
pong(unsigned long n)
{
    auto v = ping(n);
    return v;
}

void
fine(unsigned long n)
{
    auto v = ping(n);
    inform("value ", v);
}

} // namespace t
)");
    std::vector<Violation> vs = lint(tree);
    EXPECT_EQ(countRule(vs, "interproc-secret-flow"), 0u);
    EXPECT_EQ(countRule(vs, "secret-flow"), 0u);
}

TEST(LintSecretFlow, SinkForwardingParameterFlagsTaintedArgument)
{
    TempTree tree;
    tree.write("a.cc", R"(
namespace t {

void
logPayload(unsigned long data)
{
    inform("payload ", data);
}

void
leak(unsigned long salt)
{
    auto key = dhSharedKey(salt);
    logPayload(key);
}

void
fine(unsigned long plain)
{
    logPayload(plain);
}

} // namespace t
)");
    std::vector<Violation> vs = lint(tree);
    EXPECT_EQ(countRule(vs, "interproc-secret-flow"), 1u);
}

TEST(LintSecretFlow, DeclassifyLaundersInterprocTaint)
{
    TempTree tree;
    tree.write("a.cc", R"(
namespace t {

unsigned long
derive(unsigned long salt)
{
    auto key = dhSharedKey(salt);
    return key;
}

void
clean(unsigned long salt)
{
    auto key = derive(salt);
    declassify(key, "reviewed");
    inform("key ", key);
}

} // namespace t
)");
    std::vector<Violation> vs = lint(tree);
    EXPECT_EQ(countRule(vs, "interproc-secret-flow"), 0u);
    EXPECT_EQ(countRule(vs, "secret-flow"), 0u);
}

// ---- suppression on the three new rule families --------------------------

TEST(LintSuppression, AllThreeConcurrencyFamiliesSuppressible)
{
    TempTree tree;
    tree.write("a.cc", R"(
namespace t {

struct Gauge {
    base::Mutex mu;
    long level SEVF_GUARDED_BY(mu) = 0;

    void
    poke()
    {
        ++level; // sevf_lint: allow(guarded-by)
    }
};

struct Pair {
    base::Mutex a_mu;
    base::Mutex b_mu;
};

void
forward(Pair &p)
{
    base::MutexLock a(p.a_mu);
    base::MutexLock b(p.b_mu); // sevf_lint: allow(lock-order)
}

void
backward(Pair &p)
{
    base::MutexLock b(p.b_mu);
    base::MutexLock a(p.a_mu); // sevf_lint: allow(lock-order)
}

unsigned long
makeKey(unsigned long salt)
{
    auto key = dhSharedKey(salt);
    return key;
}

void
noteKey(unsigned long salt)
{
    auto key = makeKey(salt);
    inform("key ", key); // sevf_lint: allow(interproc-secret-flow)
}

} // namespace t
)");
    // Every violation suppressed, every marker consumed: fully clean.
    EXPECT_TRUE(lint(tree).empty());
}

TEST(LintSuppression, StaleConcurrencyMarkerIsAnError)
{
    TempTree tree;
    tree.write("a.cc", R"(
namespace t {

struct Gauge {
    base::Mutex mu;
    long level SEVF_GUARDED_BY(mu) = 0;

    void
    poke()
    {
        base::MutexLock lock(mu);
        ++level; // sevf_lint: allow(guarded-by)
    }
};

} // namespace t
)");
    std::vector<Violation> vs = lint(tree);
    EXPECT_EQ(countRule(vs, "unused-suppression"), 1u);
}

} // namespace
