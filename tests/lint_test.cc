/**
 * @file
 * Unit tests for the sevf_lint concurrency/interprocedural engine
 * (tools/sevf_lint_engine.h): cross-TU symbol resolution, summary
 * fixed-point convergence, the guarded-by lockset pass, lock-order
 * spec + cycle checking, and suppression handling on the three
 * concurrency fixture families. The fixture self-test (sevf_lint
 * --selftest) covers the end-to-end CLI; these tests pin down engine
 * semantics at the API level where failures are easier to localize.
 */
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>
#include <unistd.h>

#include "tools/sevf_lint_engine.h"

namespace fs = std::filesystem;
using sevf::lint::LockOrderSpec;
using sevf::lint::Options;
using sevf::lint::RunResult;
using sevf::lint::Violation;

namespace {

/** A per-test scratch tree under the system temp dir, removed on exit. */
class TempTree
{
  public:
    TempTree()
    {
        static int counter = 0;
        root_ = fs::temp_directory_path() /
                ("sevf_lint_test_" + std::to_string(::getpid()) + "_" +
                 std::to_string(counter++));
        fs::create_directories(root_);
    }

    ~TempTree() { fs::remove_all(root_); }

    TempTree(const TempTree &) = delete;
    TempTree &operator=(const TempTree &) = delete;

    const fs::path &root() const { return root_; }

    void
    write(const std::string &rel, const std::string &content)
    {
        fs::path p = root_ / rel;
        fs::create_directories(p.parent_path());
        std::ofstream out(p);
        out << content;
    }

  private:
    fs::path root_;
};

std::vector<Violation>
lint(const TempTree &tree,
     std::optional<LockOrderSpec> spec = std::nullopt)
{
    Options opts;
    opts.root = tree.root();
    opts.jobs = 1;
    opts.lock_order_spec = std::move(spec);
    return sevf::lint::runLint(opts).violations;
}

size_t
countRule(const std::vector<Violation> &vs, const std::string &rule)
{
    size_t n = 0;
    for (const Violation &v : vs) {
        if (v.rule == rule) {
            ++n;
        }
    }
    return n;
}

// ---- guarded-by ----------------------------------------------------------

constexpr const char *kGuardedStruct = R"(
namespace t {

struct Counters {
    base::Mutex mu;
    long hits SEVF_GUARDED_BY(mu) = 0;

    void
    bumpLocked()
    {
        base::MutexLock lock(mu);
        ++hits;
    }

    void
    bumpUnlocked()
    {
        ++hits;
    }
};

} // namespace t
)";

TEST(LintGuardedBy, UnlockedFieldAccessFlaggedLockedClean)
{
    TempTree tree;
    tree.write("a.cc", kGuardedStruct);
    std::vector<Violation> vs = lint(tree);
    ASSERT_EQ(countRule(vs, "guarded-by"), 1u);
    for (const Violation &v : vs) {
        if (v.rule == "guarded-by") {
            EXPECT_NE(v.message.find("Counters::hits"), std::string::npos)
                << v.message;
        }
    }
}

TEST(LintGuardedBy, RequiresCallNeedsLock)
{
    TempTree tree;
    tree.write("a.cc", R"(
namespace t {

struct Box {
    base::Mutex mu;
    long v SEVF_GUARDED_BY(mu) = 0;
};

void
touch(Box &b) SEVF_REQUIRES(b.mu)
{
    ++b.v;
}

void
good(Box &b)
{
    base::MutexLock lock(b.mu);
    touch(b);
}

void
bad(Box &b)
{
    touch(b);
}

} // namespace t
)");
    std::vector<Violation> vs = lint(tree);
    ASSERT_EQ(countRule(vs, "guarded-by"), 1u);
    for (const Violation &v : vs) {
        if (v.rule == "guarded-by") {
            EXPECT_NE(v.message.find("touch"), std::string::npos);
            EXPECT_NE(v.message.find("Box::mu"), std::string::npos);
        }
    }
}

TEST(LintGuardedBy, NoThreadSafetyAnalysisExemptsFunction)
{
    TempTree tree;
    tree.write("a.cc", R"(
namespace t {

struct Counters {
    base::Mutex mu;
    long hits SEVF_GUARDED_BY(mu) = 0;

    void
    lockFree() SEVF_NO_THREAD_SAFETY_ANALYSIS
    {
        ++hits;
    }
};

} // namespace t
)");
    EXPECT_EQ(countRule(lint(tree), "guarded-by"), 0u);
}

// ---- lock-order: cross-TU resolution + cycles ----------------------------

TEST(LintLockOrder, CrossFileCycleReportedPerEdge)
{
    TempTree tree;
    // The struct lives in one TU; the reversed nesting in another. The
    // cycle only exists once both files resolve against the same
    // symbol table, so this is the multi-file resolution test too.
    tree.write("ab.cc", R"(
namespace t {

struct Device {
    base::Mutex reg_mu;
    base::Mutex queue_mu;
};

void
forward(Device &d)
{
    base::MutexLock a(d.reg_mu);
    base::MutexLock b(d.queue_mu);
}

} // namespace t
)");
    tree.write("ba.cc", R"(
namespace t {

void
backward(Device &d)
{
    base::MutexLock b(d.queue_mu);
    base::MutexLock a(d.reg_mu);
}

} // namespace t
)");
    std::vector<Violation> vs = lint(tree);
    // One violation per edge in the cycle, so each site can carry its
    // own suppression.
    EXPECT_EQ(countRule(vs, "lock-order"), 2u);
    bool in_ab = false;
    bool in_ba = false;
    for (const Violation &v : vs) {
        in_ab = in_ab || v.file == "ab.cc";
        in_ba = in_ba || v.file == "ba.cc";
    }
    EXPECT_TRUE(in_ab);
    EXPECT_TRUE(in_ba);
}

TEST(LintLockOrder, DeclaredOrderSilencesForwardFlagsReverse)
{
    TempTree tree;
    tree.write("a.cc", R"(
namespace t {

struct Device {
    base::Mutex reg_mu;
    base::Mutex queue_mu;
};

void
forward(Device &d)
{
    base::MutexLock a(d.reg_mu);
    base::MutexLock b(d.queue_mu);
}

} // namespace t
)");
    LockOrderSpec forward_spec;
    forward_spec.order.emplace_back("Device::reg_mu", "Device::queue_mu");
    EXPECT_EQ(countRule(lint(tree, forward_spec), "lock-order"), 0u);

    LockOrderSpec reverse_spec;
    reverse_spec.order.emplace_back("Device::queue_mu", "Device::reg_mu");
    std::vector<Violation> vs = lint(tree, reverse_spec);
    ASSERT_EQ(countRule(vs, "lock-order"), 1u);
    for (const Violation &v : vs) {
        EXPECT_NE(v.message.find("contradicts"), std::string::npos);
    }
}

TEST(LintLockOrder, ExclusivePairBansNestingBothWaysAndSelf)
{
    TempTree tree;
    tree.write("a.cc", R"(
namespace t {

struct Shardish {
    base::Mutex mu;
};

struct Auditish {
    base::Mutex mu;
};

void
nested(Shardish &s, Auditish &a)
{
    base::MutexLock sl(s.mu);
    base::MutexLock al(a.mu);
}

void
selfNested(Shardish &s, Shardish &t2)
{
    base::MutexLock sl(s.mu);
    base::MutexLock tl(t2.mu);
}

} // namespace t
)");
    LockOrderSpec spec;
    spec.exclusive.emplace_back("Shardish::mu", "Auditish::mu");
    spec.exclusive.emplace_back("Shardish::mu", "Shardish::mu");
    std::vector<Violation> vs = lint(tree, spec);
    EXPECT_EQ(countRule(vs, "lock-order"), 2u);
}

// ---- interprocedural secret-flow summaries -------------------------------

TEST(LintSecretFlow, SummaryChainConvergesAcrossFiles)
{
    TempTree tree;
    // Two-hop secret-returning chain split across TUs: the fixed point
    // must first classify derive(), then rewrap() on a later round.
    tree.write("helper.cc", R"(
namespace t {

unsigned long
derive(unsigned long salt)
{
    auto key = dhSharedKey(salt);
    return key;
}

unsigned long
rewrap(unsigned long salt)
{
    auto wrapped = derive(salt);
    return wrapped;
}

} // namespace t
)");
    tree.write("caller.cc", R"(
namespace t {

void
leak(unsigned long salt)
{
    auto key = rewrap(salt);
    inform("key ", key);
}

} // namespace t
)");
    std::vector<Violation> vs = lint(tree);
    EXPECT_EQ(countRule(vs, "interproc-secret-flow"), 1u);
    EXPECT_EQ(countRule(vs, "secret-flow"), 0u);
}

TEST(LintSecretFlow, MutualRecursionConverges)
{
    TempTree tree;
    // ping/pong call each other; the fixed point must terminate and
    // neither is secret-returning (no source anywhere).
    tree.write("a.cc", R"(
namespace t {

unsigned long
ping(unsigned long n)
{
    auto v = pong(n);
    return v;
}

unsigned long
pong(unsigned long n)
{
    auto v = ping(n);
    return v;
}

void
fine(unsigned long n)
{
    auto v = ping(n);
    inform("value ", v);
}

} // namespace t
)");
    std::vector<Violation> vs = lint(tree);
    EXPECT_EQ(countRule(vs, "interproc-secret-flow"), 0u);
    EXPECT_EQ(countRule(vs, "secret-flow"), 0u);
}

TEST(LintSecretFlow, SinkForwardingParameterFlagsTaintedArgument)
{
    TempTree tree;
    tree.write("a.cc", R"(
namespace t {

void
logPayload(unsigned long data)
{
    inform("payload ", data);
}

void
leak(unsigned long salt)
{
    auto key = dhSharedKey(salt);
    logPayload(key);
}

void
fine(unsigned long plain)
{
    logPayload(plain);
}

} // namespace t
)");
    std::vector<Violation> vs = lint(tree);
    EXPECT_EQ(countRule(vs, "interproc-secret-flow"), 1u);
}

TEST(LintSecretFlow, DeclassifyLaundersInterprocTaint)
{
    TempTree tree;
    tree.write("a.cc", R"(
namespace t {

unsigned long
derive(unsigned long salt)
{
    auto key = dhSharedKey(salt);
    return key;
}

void
clean(unsigned long salt)
{
    auto key = derive(salt);
    declassify(key, "reviewed");
    inform("key ", key);
}

} // namespace t
)");
    std::vector<Violation> vs = lint(tree);
    EXPECT_EQ(countRule(vs, "interproc-secret-flow"), 0u);
    EXPECT_EQ(countRule(vs, "secret-flow"), 0u);
}

// ---- suppression on the three new rule families --------------------------

TEST(LintSuppression, AllThreeConcurrencyFamiliesSuppressible)
{
    TempTree tree;
    tree.write("a.cc", R"(
namespace t {

struct Gauge {
    base::Mutex mu;
    long level SEVF_GUARDED_BY(mu) = 0;

    void
    poke()
    {
        ++level; // sevf_lint: allow(guarded-by)
    }
};

struct Pair {
    base::Mutex a_mu;
    base::Mutex b_mu;
};

void
forward(Pair &p)
{
    base::MutexLock a(p.a_mu);
    base::MutexLock b(p.b_mu); // sevf_lint: allow(lock-order)
}

void
backward(Pair &p)
{
    base::MutexLock b(p.b_mu);
    base::MutexLock a(p.a_mu); // sevf_lint: allow(lock-order)
}

unsigned long
makeKey(unsigned long salt)
{
    auto key = dhSharedKey(salt);
    return key;
}

void
noteKey(unsigned long salt)
{
    auto key = makeKey(salt);
    inform("key ", key); // sevf_lint: allow(interproc-secret-flow)
}

} // namespace t
)");
    // Every violation suppressed, every marker consumed: fully clean.
    EXPECT_TRUE(lint(tree).empty());
}

TEST(LintSuppression, StaleConcurrencyMarkerIsAnError)
{
    TempTree tree;
    tree.write("a.cc", R"(
namespace t {

struct Gauge {
    base::Mutex mu;
    long level SEVF_GUARDED_BY(mu) = 0;

    void
    poke()
    {
        base::MutexLock lock(mu);
        ++level; // sevf_lint: allow(guarded-by)
    }
};

} // namespace t
)");
    std::vector<Violation> vs = lint(tree);
    EXPECT_EQ(countRule(vs, "unused-suppression"), 1u);
}


// ---- root-of-trust audit -------------------------------------------------

sevf::lint::RunResult
lintFull(const TempTree &tree,
         std::optional<sevf::lint::TcbBudget> budget = std::nullopt)
{
    Options opts;
    opts.root = tree.root();
    opts.jobs = 1;
    opts.tcb_budget = std::move(budget);
    return sevf::lint::runLint(opts);
}

constexpr const char *kTcbEntryTree = R"(
namespace t {

int
leafStep(int x)
{
    return x + 1;
}

int
middleStep(int x)
{
    return leafStep(x) + leafStep(x + 1);
}

int
bootEntry(int x) SEVF_TCB
{
    return middleStep(x);
}

int
notInTcb(int x)
{
    return x * 5;
}

} // namespace t
)";

TEST(LintTcb, ClosureInventoryCoversTransitiveCalleesOnly)
{
    TempTree tree;
    tree.write("boot/entry.cc", kTcbEntryTree);
    sevf::lint::RunResult r = lintFull(tree);
    EXPECT_TRUE(r.violations.empty());
    ASSERT_EQ(r.tcb.entry_points.size(), 1u);
    EXPECT_EQ(r.tcb.entry_points[0], "bootEntry");
    EXPECT_EQ(r.tcb.total_functions, 3u);
    std::vector<std::string> names;
    for (const auto &fn : r.tcb.functions) {
        names.push_back(fn.name);
        EXPECT_EQ(fn.module, "boot/entry");
        EXPECT_GT(fn.loc, 0u);
    }
    EXPECT_EQ(names,
              (std::vector<std::string>{"bootEntry", "leafStep",
                                        "middleStep"}));
}

TEST(LintTcb, BannedModuleReachReportedAtBoundaryCall)
{
    TempTree tree;
    tree.write("boot/entry.cc", R"(
namespace t {

int
bootEntry(int x) SEVF_TCB
{
    return inflate(x);
}

} // namespace t
)");
    tree.write("zip/inflate.cc", R"(
namespace t {

int
inflateInner(int x)
{
    return x * 2;
}

int
inflate(int x)
{
    return inflateInner(x);
}

} // namespace t
)");
    sevf::lint::TcbBudget budget;
    budget.banned_modules.push_back("zip");
    std::vector<Violation> vs = lintFull(tree, budget).violations;
    // Only the boundary crossing is reported, not every banned-module
    // function the closure goes on to reach.
    ASSERT_EQ(countRule(vs, "tcb-reach"), 1u);
    for (const Violation &v : vs) {
        if (v.rule == "tcb-reach") {
            EXPECT_EQ(v.file, "boot/entry.cc");
            EXPECT_NE(v.message.find("inflate"), std::string::npos);
        }
    }
}

TEST(LintTcb, BudgetOverflowFlagged)
{
    TempTree tree;
    tree.write("a.cc", kTcbEntryTree);
    sevf::lint::TcbBudget functions_budget;
    functions_budget.max_functions = 2;
    EXPECT_EQ(countRule(lintFull(tree, functions_budget).violations,
                        "tcb-budget"),
              1u);
    sevf::lint::TcbBudget loc_budget;
    loc_budget.max_loc = 3;
    EXPECT_EQ(
        countRule(lintFull(tree, loc_budget).violations, "tcb-budget"),
        1u);
    sevf::lint::TcbBudget roomy;
    roomy.max_functions = 50;
    roomy.max_loc = 500;
    EXPECT_TRUE(lintFull(tree, roomy).violations.empty());
}

TEST(LintTcb, ExemptFunctionPrunesClosure)
{
    TempTree tree;
    tree.write("a.cc", R"(
namespace t {

int
behindBoundary(int x)
{
    return x * 3;
}

int
boundary(int x) SEVF_TCB_EXEMPT
{
    return behindBoundary(x);
}

int
bootEntry(int x) SEVF_TCB
{
    return boundary(x);
}

} // namespace t
)");
    sevf::lint::RunResult r = lintFull(tree);
    EXPECT_TRUE(r.violations.empty());
    // boundary is recorded as exempt-reached; nothing behind it is
    // inventoried.
    ASSERT_EQ(r.tcb.exempt.size(), 1u);
    EXPECT_EQ(r.tcb.exempt[0], "boundary");
    EXPECT_EQ(r.tcb.total_functions, 1u);
}

TEST(LintTcb, StaleExemptIsAnError)
{
    TempTree tree;
    tree.write("a.cc", R"(
namespace t {

int
neverReached(int x) SEVF_TCB_EXEMPT
{
    return x;
}

int
bootEntry(int x) SEVF_TCB
{
    return x + 1;
}

} // namespace t
)");
    std::vector<Violation> vs = lintFull(tree).violations;
    ASSERT_EQ(countRule(vs, "unused-suppression"), 1u);
    for (const Violation &v : vs) {
        if (v.rule == "unused-suppression") {
            EXPECT_NE(v.message.find("neverReached"), std::string::npos);
        }
    }
}

TEST(LintTcb, ExemptModulePrunesTraversal)
{
    TempTree tree;
    tree.write("boot/entry.cc", R"(
namespace t {

int
bootEntry(int x) SEVF_TCB
{
    return probe(x);
}

} // namespace t
)");
    tree.write("obs/probe.cc", R"(
namespace t {

int
probeInner(int x)
{
    return x - 1;
}

int
probe(int x)
{
    return probeInner(x);
}

} // namespace t
)");
    sevf::lint::TcbBudget budget;
    budget.exempt_modules.push_back("obs");
    sevf::lint::RunResult r = lintFull(tree, budget);
    EXPECT_TRUE(r.violations.empty());
    ASSERT_EQ(r.tcb.exempt.size(), 1u);
    EXPECT_EQ(r.tcb.exempt[0], "probe");
    EXPECT_EQ(r.tcb.total_functions, 1u);
}

TEST(LintTcb, DynamicAllocationInClosureFlagged)
{
    TempTree tree;
    tree.write("a.cc", R"(
namespace t {

int
grabInTcb(unsigned long n) SEVF_TCB
{
    void *p = malloc(n);
    free(p);
    return p != 0;
}

int
grabOutside(unsigned long n)
{
    void *p = malloc(n);
    free(p);
    return p != 0;
}

} // namespace t
)");
    std::vector<Violation> vs = lintFull(tree).violations;
    // malloc and free each trip, but only in the function inside the
    // closure.
    ASSERT_EQ(countRule(vs, "tcb-construct"), 2u);
    for (const Violation &v : vs) {
        if (v.rule == "tcb-construct") {
            EXPECT_NE(v.message.find("grabInTcb"), std::string::npos);
        }
    }
}

TEST(LintTcb, BannedApiCallFlagged)
{
    TempTree tree;
    tree.write("a.cc", R"(
namespace t {

int
formatInTcb(char *buf, int v) SEVF_TCB
{
    return sprintf(buf, "%d", v);
}

} // namespace t
)");
    sevf::lint::TcbBudget budget;
    budget.banned_apis.push_back("sprintf");
    EXPECT_EQ(countRule(lintFull(tree, budget).violations,
                        "tcb-construct"),
              1u);
    EXPECT_TRUE(lintFull(tree).violations.empty());
}

TEST(LintTcb, CallGraphCycleFlagged)
{
    TempTree tree;
    tree.write("a.cc", R"(
namespace t {

int pong(int n);

int
ping(int n) SEVF_TCB
{
    if (n <= 0) {
        return 0;
    }
    return pong(n - 1);
}

int
pong(int n)
{
    return ping(n);
}

} // namespace t
)");
    std::vector<Violation> vs = lintFull(tree).violations;
    EXPECT_GE(countRule(vs, "tcb-recursion"), 1u);
}

// ---- untrusted-input bounds ----------------------------------------------

TEST(LintBounds, UncheckedOffsetFlaggedCheckedClean)
{
    TempTree tree;
    tree.write("a.cc", R"(
namespace t {

int
readUnchecked(const unsigned char *data, unsigned long off)
    SEVF_UNTRUSTED_INPUT
{
    return data[off];
}

int
readChecked(const unsigned char *data, unsigned long len,
            unsigned long off) SEVF_UNTRUSTED_INPUT
{
    if (off + 1 > len) {
        return -1;
    }
    return data[off];
}

int
readUnannotated(const unsigned char *data, unsigned long off)
{
    return data[off];
}

} // namespace t
)");
    std::vector<Violation> vs = lintFull(tree).violations;
    ASSERT_EQ(countRule(vs, "untrusted-bounds"), 1u);
    for (const Violation &v : vs) {
        if (v.rule == "untrusted-bounds") {
            EXPECT_NE(v.message.find("readUnchecked"), std::string::npos);
            EXPECT_NE(v.message.find("'off'"), std::string::npos);
        }
    }
}

TEST(LintBounds, ClampIdiomCountsAsGuard)
{
    TempTree tree;
    tree.write("a.cc", R"(
namespace t {

unsigned long
copyClamped(unsigned char *dst, const unsigned char *payload,
            unsigned long avail, unsigned long want) SEVF_UNTRUSTED_INPUT
{
    unsigned long n = std::min(want, avail);
    memcpy(dst, payload, n);
    return n;
}

} // namespace t
)");
    EXPECT_TRUE(lintFull(tree).violations.empty());
}

TEST(LintBounds, SubspanAndCopyCallsAreSites)
{
    TempTree tree;
    tree.write("a.cc", R"(
namespace t {

int
sliceFrame(ByteSpan frame, unsigned long body_off, unsigned long body_len)
    SEVF_UNTRUSTED_INPUT
{
    auto body = frame.subspan(body_off, body_len);
    return body.size();
}

} // namespace t
)");
    std::vector<Violation> vs = lintFull(tree).violations;
    EXPECT_GE(countRule(vs, "untrusted-bounds"), 1u);
}

TEST(LintBounds, SuppressionConsumedAndStaleOnePersists)
{
    TempTree tree;
    tree.write("a.cc", R"(
namespace t {

int
readAudited(const unsigned char *data, unsigned long off)
    SEVF_UNTRUSTED_INPUT
{
    return data[off]; // sevf_lint: allow(untrusted-bounds)
}

} // namespace t
)");
    EXPECT_TRUE(lintFull(tree).violations.empty());
}

// ---- JSON rendering ------------------------------------------------------

TEST(LintJson, EscapesControlAndQuoteCharacters)
{
    EXPECT_EQ(sevf::lint::jsonEscape("a\"b\\c\nd"),
              "a\\\"b\\\\c\\nd");
    EXPECT_EQ(sevf::lint::jsonEscape(std::string(1, '\x02')), "\\u0002");
}

TEST(LintJson, TcbInventoryRenderIsDeterministic)
{
    TempTree tree;
    tree.write("boot/entry.cc", kTcbEntryTree);
    sevf::lint::RunResult r1 = lintFull(tree);
    sevf::lint::RunResult r2 = lintFull(tree);
    std::string json = sevf::lint::renderTcbJson(r1.tcb);
    EXPECT_EQ(json, sevf::lint::renderTcbJson(r2.tcb));
    EXPECT_NE(json.find("\"entry_points\": [\"bootEntry\"]"),
              std::string::npos);
    EXPECT_NE(json.find("\"module\": \"boot/entry\""), std::string::npos);
    EXPECT_NE(json.find("\"total_functions\": 3"), std::string::npos);
}

TEST(LintJson, ReportJsonCarriesViolationsAndInventory)
{
    TempTree tree;
    tree.write("a.cc", R"(
namespace t {

int
readUnchecked(const unsigned char *data, unsigned long off)
    SEVF_UNTRUSTED_INPUT
{
    return data[off];
}

} // namespace t
)");
    sevf::lint::RunResult r = lintFull(tree);
    std::string json = sevf::lint::renderReportJson(r);
    EXPECT_NE(json.find("\"violations\": ["), std::string::npos);
    EXPECT_NE(json.find("\"rule\": \"untrusted-bounds\""),
              std::string::npos);
    EXPECT_NE(json.find("\"tcb\": {"), std::string::npos);
}

} // namespace
