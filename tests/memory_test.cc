/**
 * @file
 * Memory substrate tests: RMP semantics (ownership, pvalidate, #VC on
 * remap), encrypted guest memory through the C-bit, PSP in-place
 * pre-encryption, and page-table build/walk including the C-bit.
 */
#include <gtest/gtest.h>

#include <memory>

#include "base/bytes.h"
#include "base/rng.h"
#include "crypto/xex.h"
#include "memory/guest_memory.h"
#include "memory/page_table.h"
#include "memory/rmp.h"

namespace sevf::memory {
namespace {

constexpr u32 kAsid = 7;
constexpr Spa kSpaBase = 0x100000000ull; // 4 GiB host offset

std::unique_ptr<crypto::XexCipher>
makeEngine(u64 seed)
{
    Rng rng(seed);
    crypto::Aes128Key key, tweak;
    rng.fill(key);
    rng.fill(tweak);
    return std::make_unique<crypto::XexCipher>(key, tweak);
}

// ---------------------------------------------------------------- RMP

class RmpTest : public ::testing::Test
{
  protected:
    RmpTest() : rmp_(kSpaBase, 16) {}
    Rmp rmp_;
};

TEST_F(RmpTest, FreshPagesAreHypervisorOwned)
{
    const RmpEntry &e = rmp_.entryAt(kSpaBase);
    EXPECT_FALSE(e.assigned);
    EXPECT_FALSE(e.validated);
    EXPECT_TRUE(rmp_.checkHostWrite(kSpaBase).isOk());
    EXPECT_FALSE(rmp_.checkGuestAccess(kSpaBase, kAsid, 0).isOk());
}

TEST_F(RmpTest, AssignThenPvalidateEnablesGuestAccess)
{
    ASSERT_TRUE(rmp_.rmpUpdate(kSpaBase, kAsid, 0, true).isOk());
    // Assigned but not yet validated: guest access faults.
    EXPECT_FALSE(rmp_.checkGuestAccess(kSpaBase, kAsid, 0).isOk());
    ASSERT_TRUE(rmp_.pvalidate(kSpaBase, kAsid, 0, true).isOk());
    EXPECT_TRUE(rmp_.checkGuestAccess(kSpaBase, kAsid, 0).isOk());
    // And the host is now locked out.
    EXPECT_FALSE(rmp_.checkHostWrite(kSpaBase).isOk());
}

TEST_F(RmpTest, PvalidateRequiresOwnership)
{
    ASSERT_TRUE(rmp_.rmpUpdate(kSpaBase, kAsid, 0, true).isOk());
    EXPECT_FALSE(rmp_.pvalidate(kSpaBase, kAsid + 1, 0, true).isOk());
    EXPECT_FALSE(rmp_.pvalidate(kSpaBase, kAsid, kPageSize, true).isOk());
}

TEST_F(RmpTest, RemapClearsValidated)
{
    // The replay/remap attack from §2.2: hypervisor changes a mapping,
    // hardware clears the valid bit, next guest access takes #VC.
    ASSERT_TRUE(rmp_.rmpUpdate(kSpaBase, kAsid, 0, true).isOk());
    ASSERT_TRUE(rmp_.pvalidate(kSpaBase, kAsid, 0, true).isOk());
    ASSERT_TRUE(rmp_.rmpUpdate(kSpaBase, kAsid, 2 * kPageSize, true).isOk());
    Status vc = rmp_.checkGuestAccess(kSpaBase, kAsid, 2 * kPageSize);
    EXPECT_FALSE(vc.isOk());
    EXPECT_EQ(vc.code(), ErrorCode::kAccessDenied);
}

TEST_F(RmpTest, GpaAliasDetected)
{
    ASSERT_TRUE(rmp_.rmpUpdate(kSpaBase, kAsid, 0, true).isOk());
    ASSERT_TRUE(rmp_.pvalidate(kSpaBase, kAsid, 0, true).isOk());
    // Guest believes it is touching GPA 0x3000 but host routed it here.
    EXPECT_FALSE(rmp_.checkGuestAccess(kSpaBase, kAsid, 0x3000).isOk());
}

TEST_F(RmpTest, ImmutablePagesRejectUpdates)
{
    ASSERT_TRUE(rmp_.setImmutable(kSpaBase).isOk());
    EXPECT_FALSE(rmp_.rmpUpdate(kSpaBase, kAsid, 0, true).isOk());
    EXPECT_FALSE(rmp_.checkHostWrite(kSpaBase).isOk());
}

TEST_F(RmpTest, OutOfRangeSpaRejected)
{
    EXPECT_FALSE(rmp_.rmpUpdate(kSpaBase - kPageSize, kAsid, 0, true).isOk());
    EXPECT_FALSE(
        rmp_.rmpUpdate(kSpaBase + 16 * kPageSize, kAsid, 0, true).isOk());
}

TEST_F(RmpTest, ValidatedCount)
{
    EXPECT_EQ(rmp_.validatedCount(), 0u);
    ASSERT_TRUE(rmp_.pspAssignValidated(kSpaBase, kAsid, 0).isOk());
    ASSERT_TRUE(
        rmp_.pspAssignValidated(kSpaBase + kPageSize, kAsid, kPageSize)
            .isOk());
    EXPECT_EQ(rmp_.validatedCount(), 2u);
}

// ------------------------------------------------------- guest memory

class GuestMemoryTest : public ::testing::Test
{
  protected:
    GuestMemoryTest() : mem_(1 * kMiB, kSpaBase, kAsid) {}

    void
    enableSev()
    {
        mem_.attachEncryption(makeEngine(1234));
    }

    /** Assign+validate the page range so the guest may use it privately. */
    void
    claimPages(Gpa gpa, u64 len)
    {
        for (Gpa p = alignDown(gpa, kPageSize); p < gpa + len;
             p += kPageSize) {
            ASSERT_TRUE(
                mem_.rmp().rmpUpdate(mem_.spaOf(p), kAsid, p, true).isOk());
            ASSERT_TRUE(
                mem_.rmp().pvalidate(mem_.spaOf(p), kAsid, p, true).isOk());
        }
    }

    GuestMemory mem_;
};

TEST_F(GuestMemoryTest, NonSevReadWrite)
{
    ByteVec data = toBytes("plain guest data");
    ASSERT_TRUE(mem_.hostWrite(0x1000, data).isOk());
    Result<ByteVec> r = mem_.guestRead(0x1000, data.size(), false);
    ASSERT_TRUE(r.isOk());
    EXPECT_EQ(*r, data);
}

TEST_F(GuestMemoryTest, BoundsChecked)
{
    ByteVec data(16, 1);
    EXPECT_FALSE(mem_.hostWrite(mem_.size() - 8, data).isOk());
    EXPECT_FALSE(mem_.hostRead(mem_.size(), 1).isOk());
    EXPECT_TRUE(mem_.hostWrite(mem_.size() - 16, data).isOk());
}

TEST_F(GuestMemoryTest, EncryptedWriteProducesCiphertextInDram)
{
    enableSev();
    claimPages(0x2000, kPageSize);
    ByteVec secret = toBytes("attestation private key material!");
    ASSERT_TRUE(mem_.guestWrite(0x2000, secret, true).isOk());

    // Host sees ciphertext.
    Result<ByteVec> host_view = mem_.hostRead(0x2000, secret.size());
    ASSERT_TRUE(host_view.isOk());
    EXPECT_NE(*host_view, secret);

    // Guest sees plaintext.
    Result<ByteVec> guest_view = mem_.guestRead(0x2000, secret.size(), true);
    ASSERT_TRUE(guest_view.isOk());
    EXPECT_EQ(*guest_view, secret);
}

TEST_F(GuestMemoryTest, UnalignedEncryptedWritesPreserveNeighbours)
{
    enableSev();
    claimPages(0x3000, kPageSize);
    ByteVec base(64, 0xaa);
    ASSERT_TRUE(mem_.guestWrite(0x3000, base, true).isOk());
    // Overwrite 5 bytes in the middle of a 16-byte line.
    ByteVec patch = toBytes("HELLO");
    ASSERT_TRUE(mem_.guestWrite(0x3007, patch, true).isOk());

    Result<ByteVec> r = mem_.guestRead(0x3000, 64, true);
    ASSERT_TRUE(r.isOk());
    EXPECT_EQ((*r)[6], 0xaa);
    EXPECT_EQ((*r)[7], 'H');
    EXPECT_EQ((*r)[11], 'O');
    EXPECT_EQ((*r)[12], 0xaa);
}

TEST_F(GuestMemoryTest, HostCannotWriteGuestOwnedPage)
{
    enableSev();
    claimPages(0x4000, kPageSize);
    Status s = mem_.hostWrite(0x4000, toBytes("evil"));
    EXPECT_FALSE(s.isOk());
    EXPECT_EQ(s.code(), ErrorCode::kAccessDenied);
}

TEST_F(GuestMemoryTest, GuestAccessToUnvalidatedPageFaults)
{
    enableSev();
    Status s = mem_.guestWrite(0x5000, toBytes("data"), true);
    EXPECT_FALSE(s.isOk());
    EXPECT_EQ(s.code(), ErrorCode::kAccessDenied);
}

TEST_F(GuestMemoryTest, SharedAccessNeedsNoValidation)
{
    enableSev();
    // C-bit clear: shared page, used for measured-direct-boot staging.
    ByteVec data = toBytes("plaintext kernel bytes");
    ASSERT_TRUE(mem_.hostWrite(0x6000, data).isOk());
    Result<ByteVec> r = mem_.guestRead(0x6000, data.size(), false);
    ASSERT_TRUE(r.isOk());
    EXPECT_EQ(*r, data);
}

TEST_F(GuestMemoryTest, PspEncryptInPlaceRoundTrips)
{
    enableSev();
    ByteVec verifier = toBytes("boot verifier code ...");
    verifier.resize(kPageSize, 0);
    ASSERT_TRUE(mem_.hostWrite(0x8000, verifier).isOk());
    ASSERT_TRUE(mem_.pspEncryptInPlace(0x8000, kPageSize).isOk());

    // DRAM no longer shows the plaintext.
    EXPECT_NE(*mem_.hostRead(0x8000, kPageSize), verifier);
    // The guest can read it back through the C-bit without pvalidating:
    // LAUNCH_UPDATE pages arrive validated.
    EXPECT_EQ(*mem_.guestRead(0x8000, kPageSize, true), verifier);
    // And the host is locked out.
    EXPECT_FALSE(mem_.hostWrite(0x8000, toBytes("evil")).isOk());
}

TEST_F(GuestMemoryTest, PspEncryptRequiresAlignmentAndKey)
{
    EXPECT_EQ(mem_.pspEncryptInPlace(0x8000, kPageSize).code(),
              ErrorCode::kInvalidState);
    enableSev();
    EXPECT_EQ(mem_.pspEncryptInPlace(0x8001, 16).code(),
              ErrorCode::kInvalidArgument);
}

TEST_F(GuestMemoryTest, SamePlaintextDifferentGpaDifferentCiphertext)
{
    enableSev();
    claimPages(0x10000, 2 * kPageSize);
    ByteVec page(kPageSize, 0x61);
    ASSERT_TRUE(mem_.guestWrite(0x10000, page, true).isOk());
    ASSERT_TRUE(mem_.guestWrite(0x11000, page, true).isOk());
    EXPECT_NE(*mem_.hostRead(0x10000, kPageSize),
              *mem_.hostRead(0x11000, kPageSize));
}

TEST_F(GuestMemoryTest, DistinctVmsDistinctCiphertexts)
{
    // Even with the SAME key material, distinct SPA bases make dedup
    // impossible (§7.1); with distinct keys it is doubly so.
    GuestMemory a(64 * kPageSize, 0x100000000ull, 1);
    GuestMemory b(64 * kPageSize, 0x200000000ull, 2);
    a.attachEncryption(makeEngine(42));
    b.attachEncryption(makeEngine(42));
    ByteVec page(kPageSize, 0x5a);
    ASSERT_TRUE(a.hostWrite(0, page).isOk());
    ASSERT_TRUE(b.hostWrite(0, page).isOk());
    ASSERT_TRUE(a.pspEncryptInPlace(0, kPageSize).isOk());
    ASSERT_TRUE(b.pspEncryptInPlace(0, kPageSize).isOk());
    EXPECT_NE(*a.hostRead(0, kPageSize), *b.hostRead(0, kPageSize));
}

TEST_F(GuestMemoryTest, HostWriteUncheckedCorruptsButGuestSeesGarbage)
{
    enableSev();
    claimPages(0x12000, kPageSize);
    ByteVec data = toBytes("sensitive sixteen");
    ASSERT_TRUE(mem_.guestWrite(0x12000, data, true).isOk());
    // Physical attacker flips DRAM bytes; guest read decrypts garbage,
    // not attacker-controlled plaintext.
    mem_.hostWriteUnchecked(0x12000, ByteVec(16, 0));
    Result<ByteVec> r = mem_.guestRead(0x12000, 16, true);
    ASSERT_TRUE(r.isOk());
    EXPECT_NE(ByteVec(r->begin(), r->begin() + 16),
              ByteVec(data.begin(), data.begin() + 16));
}


TEST_F(GuestMemoryTest, SingleLinePartialEncryptedWritePreservesTail)
{
    // Regression: aligned start + partial end within ONE 16-byte line
    // must still read-modify-write the stale plaintext tail.
    enableSev();
    claimPages(0x3000, kPageSize);
    ByteVec base(32, 0xbb);
    ASSERT_TRUE(mem_.guestWrite(0x3000, base, true).isOk());
    ByteVec patch = toBytes("abc");
    ASSERT_TRUE(mem_.guestWrite(0x3000, patch, true).isOk());
    Result<ByteVec> r = mem_.guestRead(0x3000, 32, true);
    ASSERT_TRUE(r.isOk());
    EXPECT_EQ((*r)[0], 'a');
    EXPECT_EQ((*r)[3], 0xbb);
    EXPECT_EQ((*r)[15], 0xbb);
    EXPECT_EQ((*r)[31], 0xbb);
}

TEST_F(GuestMemoryTest, PartialStartAlignedEndWithinOneLine)
{
    enableSev();
    claimPages(0x3000, kPageSize);
    ByteVec base(32, 0xcc);
    ASSERT_TRUE(mem_.guestWrite(0x3000, base, true).isOk());
    ByteVec patch = toBytes("zz");
    ASSERT_TRUE(mem_.guestWrite(0x300e, patch, true).isOk());
    Result<ByteVec> r = mem_.guestRead(0x3000, 32, true);
    ASSERT_TRUE(r.isOk());
    EXPECT_EQ((*r)[13], 0xcc);
    EXPECT_EQ((*r)[14], 'z');
    EXPECT_EQ((*r)[15], 'z');
    EXPECT_EQ((*r)[16], 0xcc);
}


// ------------------------------------------------------- SEV modes

TEST(SevModes, BaseSevEncryptsWithoutIntegrity)
{
    // Base SEV: host writes to guest pages are NOT blocked (no RMP),
    // but the data is still ciphertext to the host.
    GuestMemory mem(64 * kPageSize, kSpaBase, 3, SevMode::kSev);
    mem.attachEncryption(makeEngine(9));
    EXPECT_FALSE(mem.integrityEnforced());
    EXPECT_EQ(mem.sevMode(), SevMode::kSev);

    ByteVec secret = toBytes("sixteen byte sec");
    // No pvalidate required pre-SNP.
    ASSERT_TRUE(mem.guestWrite(0x2000, secret, true).isOk());
    EXPECT_EQ(*mem.guestRead(0x2000, secret.size(), true), secret);
    EXPECT_NE(*mem.hostRead(0x2000, secret.size()), secret);

    // The host CAN scribble over the page (corruption, not disclosure).
    EXPECT_TRUE(mem.hostWrite(0x2000, ByteVec(16, 0)).isOk());
    ByteVec after = *mem.guestRead(0x2000, 16, true);
    EXPECT_NE(after, ByteVec(secret.begin(), secret.begin() + 16));
}

TEST(SevModes, SnpBlocksWhatSevAllows)
{
    GuestMemory sev(64 * kPageSize, kSpaBase, 3, SevMode::kSev);
    GuestMemory snp(64 * kPageSize, kSpaBase, 4, SevMode::kSevSnp);
    sev.attachEncryption(makeEngine(10));
    snp.attachEncryption(makeEngine(10));

    ByteVec page(kPageSize, 0x77);
    ASSERT_TRUE(sev.hostWrite(0x3000, page).isOk());
    ASSERT_TRUE(snp.hostWrite(0x3000, page).isOk());
    ASSERT_TRUE(sev.pspEncryptInPlace(0x3000, kPageSize).isOk());
    ASSERT_TRUE(snp.pspEncryptInPlace(0x3000, kPageSize).isOk());

    // SNP locks the page against the host; base SEV does not.
    EXPECT_TRUE(sev.hostWrite(0x3000, ByteVec(16, 0)).isOk());
    EXPECT_FALSE(snp.hostWrite(0x3000, ByteVec(16, 0)).isOk());
}

TEST(SevModes, AsidZeroForcesNone)
{
    GuestMemory mem(16 * kPageSize, kSpaBase, 0, SevMode::kSevSnp);
    EXPECT_EQ(mem.sevMode(), SevMode::kNone);
    EXPECT_FALSE(mem.integrityEnforced());
}

TEST(SevModes, Names)
{
    EXPECT_STREQ(sevModeName(SevMode::kSev), "sev");
    EXPECT_STREQ(sevModeName(SevMode::kSevEs), "sev-es");
    EXPECT_STREQ(sevModeName(SevMode::kSevSnp), "sev-snp");
    EXPECT_TRUE(hasEncryptedState(SevMode::kSevEs));
    EXPECT_FALSE(hasEncryptedState(SevMode::kSev));
    EXPECT_TRUE(hasIntegrity(SevMode::kSevSnp));
    EXPECT_FALSE(hasIntegrity(SevMode::kSevEs));
}

// ------------------------------------------------------- page tables

class PageTableTest : public ::testing::Test
{
  protected:
    /** Builds tables in a raw buffer and returns a walker over it. */
    PageTableWalker
    makeWalker(const ByteVec &tables, Gpa root)
    {
        return PageTableWalker(
            root, [&tables, root](u64 pa) -> Result<u64> {
                if (pa < root || pa + 8 > root + tables.size()) {
                    return errNotFound("entry outside table buffer");
                }
                return loadLe<u64>(tables.data() + (pa - root));
            });
    }
};

TEST_F(PageTableTest, SizeFormula)
{
    EXPECT_EQ(identityTableSize(256 * kMiB), 3 * kPageSize);
    EXPECT_EQ(identityTableSize(1 * kGiB), 3 * kPageSize);
    EXPECT_EQ(identityTableSize(1 * kGiB + 1), 4 * kPageSize);
    EXPECT_EQ(identityTableSize(4 * kGiB), 6 * kPageSize);
}

TEST_F(PageTableTest, IdentityWalk)
{
    PageTableConfig cfg;
    cfg.root_gpa = 0x200000; // 2 MiB, arbitrary aligned spot
    cfg.map_bytes = 256 * kMiB;
    Result<ByteVec> tables = buildIdentityTables(cfg);
    ASSERT_TRUE(tables.isOk());
    PageTableWalker walker = makeWalker(*tables, cfg.root_gpa);

    for (u64 va : {u64{0}, u64{0x1234}, 2 * kMiB + 5, 255 * kMiB}) {
        Result<WalkResult> w = walker.walk(va);
        ASSERT_TRUE(w.isOk()) << "va=" << va;
        EXPECT_EQ(w->pa, va);
        EXPECT_FALSE(w->c_bit);
        EXPECT_TRUE(w->writable);
        EXPECT_EQ(w->page_size, kHugePageSize);
    }
}

TEST_F(PageTableTest, CBitPropagates)
{
    PageTableConfig cfg;
    cfg.root_gpa = 0;
    cfg.map_bytes = 64 * kMiB;
    cfg.set_c_bit = true;
    Result<ByteVec> tables = buildIdentityTables(cfg);
    ASSERT_TRUE(tables.isOk());
    PageTableWalker walker = makeWalker(*tables, 0);

    Result<WalkResult> w = walker.walk(10 * kMiB + 123);
    ASSERT_TRUE(w.isOk());
    EXPECT_TRUE(w->c_bit);
    EXPECT_EQ(w->pa, 10 * kMiB + 123);
}

TEST_F(PageTableTest, UnmappedAddressFaults)
{
    PageTableConfig cfg;
    cfg.root_gpa = 0;
    cfg.map_bytes = 256 * kMiB;
    Result<ByteVec> tables = buildIdentityTables(cfg);
    ASSERT_TRUE(tables.isOk());
    PageTableWalker walker = makeWalker(*tables, 0);

    // Beyond the mapped range within the same PD: non-present entry.
    EXPECT_FALSE(walker.walk(512 * kMiB).isOk());
    // A different PML4 slot entirely.
    EXPECT_FALSE(walker.walk(1ull << 40).isOk());
}

TEST_F(PageTableTest, RejectsBadConfig)
{
    PageTableConfig cfg;
    cfg.map_bytes = 0;
    EXPECT_FALSE(buildIdentityTables(cfg).isOk());
    cfg.map_bytes = kMiB;
    cfg.root_gpa = 123; // unaligned
    EXPECT_FALSE(buildIdentityTables(cfg).isOk());
    cfg.root_gpa = 0;
    cfg.map_bytes = 513ull * kGiB;
    EXPECT_FALSE(buildIdentityTables(cfg).isOk());
}

TEST_F(PageTableTest, WalkerOverEncryptedGuestMemory)
{
    // End-to-end: tables generated in C-bit memory by the "verifier",
    // then walked through decrypting reads - the real boot layout.
    GuestMemory mem(4 * kMiB, kSpaBase, kAsid);
    mem.attachEncryption(makeEngine(5));

    PageTableConfig cfg;
    cfg.root_gpa = 0x1000;
    cfg.map_bytes = 2 * kMiB;
    cfg.set_c_bit = true;
    Result<ByteVec> tables = buildIdentityTables(cfg);
    ASSERT_TRUE(tables.isOk());

    for (Gpa p = cfg.root_gpa; p < cfg.root_gpa + tables->size();
         p += kPageSize) {
        ASSERT_TRUE(mem.rmp().rmpUpdate(mem.spaOf(p), kAsid, p, true).isOk());
        ASSERT_TRUE(mem.rmp().pvalidate(mem.spaOf(p), kAsid, p, true).isOk());
    }
    ASSERT_TRUE(mem.guestWrite(cfg.root_gpa, *tables, true).isOk());

    PageTableWalker walker(
        cfg.root_gpa, [&mem](u64 pa) -> Result<u64> {
            Result<ByteVec> bytes = mem.guestRead(pa, 8, true);
            if (!bytes.isOk()) {
                return bytes.status();
            }
            return loadLe<u64>(bytes->data());
        });
    Result<WalkResult> w = walker.walk(0x123456);
    ASSERT_TRUE(w.isOk()) << w.status().toString();
    EXPECT_EQ(w->pa, 0x123456u);
    EXPECT_TRUE(w->c_bit);
}

} // namespace
} // namespace sevf::memory
