/**
 * @file
 * Observability layer: registry units, histogram bucket edges, span
 * nesting (including across parallelFor workers), Chrome-trace JSON
 * well-formedness (parsed with the repo's own stats/json parser), the
 * exporters, and a full five-strategy launch whose span tree must match
 * the phase order the launch itself reports.
 */
#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "base/parallel.h"
#include "core/launch.h"
#include "obs/export.h"
#include "obs/metrics.h"
#include "obs/span.h"
#include "stats/json.h"
#include "workload/synthetic.h"

namespace sevf::obs {
namespace {

/** Fresh log + zeroed metric values for every test. */
class ObsTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        TraceLog::instance().clear();
        Registry::instance().reset();
    }

    void
    TearDown() override
    {
        setMetricsEnabled(false);
        setTracingEnabled(false);
        TraceLog::instance().clear();
        Registry::instance().reset();
    }
};

TEST_F(ObsTest, CounterCountsOnlyWhenEnabled)
{
    Counter &c = Registry::instance().counter("test_counter_total", "t");
    c.add(5); // disabled: dropped
    EXPECT_EQ(c.value(), 0u);
    {
        ScopedEnable on(true, false);
        c.add(5);
        c.add();
    }
    EXPECT_EQ(c.value(), 6u);
    c.add(100); // disabled again
    EXPECT_EQ(c.value(), 6u);
}

TEST_F(ObsTest, RegistryReturnsSameObjectForSameIdentity)
{
    Counter &a = Registry::instance().counter("test_identity_total", "t",
                                              {{"k", "v"}});
    Counter &b = Registry::instance().counter("test_identity_total", "t",
                                              {{"k", "v"}});
    Counter &other = Registry::instance().counter("test_identity_total", "t",
                                                  {{"k", "w"}});
    EXPECT_EQ(&a, &b);
    EXPECT_NE(&a, &other);
}

TEST_F(ObsTest, GaugeSetAddSetMax)
{
    ScopedEnable on(true, false);
    Gauge &g = Registry::instance().gauge("test_gauge", "t");
    g.set(10);
    EXPECT_EQ(g.value(), 10);
    g.add(-3);
    EXPECT_EQ(g.value(), 7);
    g.setMax(5); // below: no change
    EXPECT_EQ(g.value(), 7);
    g.setMax(20);
    EXPECT_EQ(g.value(), 20);
}

TEST_F(ObsTest, HistogramBucketEdgesAreInclusiveUpperBounds)
{
    ScopedEnable on(true, false);
    Histogram &h =
        Registry::instance().histogram("test_hist", "t", {10, 100});
    h.observe(0);   // bucket 0
    h.observe(10);  // bucket 0: bounds are inclusive
    h.observe(11);  // bucket 1
    h.observe(100); // bucket 1
    h.observe(101); // +Inf bucket
    HistogramSnapshot snap = h.snapshot();
    ASSERT_EQ(snap.counts.size(), 3u);
    EXPECT_EQ(snap.counts[0], 2u);
    EXPECT_EQ(snap.counts[1], 2u);
    EXPECT_EQ(snap.counts[2], 1u);
    EXPECT_EQ(snap.count, 5u);
    EXPECT_EQ(snap.sum, 0u + 10 + 11 + 100 + 101);
}

TEST_F(ObsTest, CounterIsExactUnderConcurrentWriters)
{
    ScopedEnable on(true, false);
    Counter &c = Registry::instance().counter("test_concurrent_total", "t");
    base::ThreadPool pool(4);
    pool.parallelFor(0, 10000, 7, [&](u64 lo, u64 hi) {
        for (u64 i = lo; i < hi; ++i) {
            c.add();
        }
    });
    EXPECT_EQ(c.value(), 10000u);
}

TEST_F(ObsTest, SpanRecordsNothingWhenDisabled)
{
    {
        SEVF_SPAN("disabled.span", "bytes", u64{42});
    }
    EXPECT_EQ(TraceLog::instance().size(), 0u);
    EXPECT_EQ(currentSpanId(), 0u);
}

TEST_F(ObsTest, SpansNestWithinOneThread)
{
    ScopedEnable on(true, true);
    {
        Span outer("outer");
        u64 outer_id = currentSpanId();
        ASSERT_NE(outer_id, 0u);
        {
            Span inner("inner");
            EXPECT_NE(currentSpanId(), outer_id);
        }
        EXPECT_EQ(currentSpanId(), outer_id);
    }
    EXPECT_EQ(currentSpanId(), 0u);

    std::vector<TraceEvent> events = TraceLog::instance().snapshot();
    ASSERT_EQ(events.size(), 2u); // inner closes first
    EXPECT_EQ(events[0].name, "inner");
    EXPECT_EQ(events[1].name, "outer");
    EXPECT_EQ(events[0].parent, events[1].id);
    EXPECT_EQ(events[1].parent, 0u);
    EXPECT_LE(events[1].start_ns, events[0].start_ns);
}

TEST_F(ObsTest, SpansNestAcrossParallelForWorkers)
{
    ScopedEnable on(true, true);
    u64 outer_id = 0;
    {
        Span outer("outer");
        outer_id = currentSpanId();
        base::ThreadPool pool(4);
        pool.parallelFor(0, 16, 1, [&](u64 lo, u64 hi) {
            (void)hi;
            Span worker("worker.chunk", "index", lo);
        });
    }
    std::vector<TraceEvent> events = TraceLog::instance().snapshot();
    std::size_t workers = 0;
    for (const TraceEvent &e : events) {
        if (e.name == "worker.chunk") {
            ++workers;
            // Even on a pool thread the chunk span hangs off the span
            // that issued the parallelFor (WorkerContextHooks).
            EXPECT_EQ(e.parent, outer_id);
        }
    }
    EXPECT_EQ(workers, 16u);
}

TEST_F(ObsTest, ChromeTraceExportIsWellFormedJson)
{
    ScopedEnable on(true, true);
    {
        Span span("export.span", "bytes", u64{128});
    }
    u64 launch = newLaunchId();
    simStep(launch, kSimCpuTrack, "test-phase", "step-a", 0, 1000);
    simStep(launch, kSimPspTrack, "test-phase", "step-b", 1000, 500);
    simCounter(launch, "test_counter", 0, 3);

    Result<stats::JsonValue> doc = stats::parseJson(exportChromeTrace());
    ASSERT_TRUE(doc.isOk()) << doc.status().toString();
    const stats::JsonValue *events = doc->find("traceEvents");
    ASSERT_NE(events, nullptr);
    ASSERT_TRUE(events->isArray());

    bool saw_wall = false;
    bool saw_step = false;
    bool saw_counter = false;
    bool saw_phase_envelope = false;
    for (const stats::JsonValue &e : events->asArray()) {
        ASSERT_TRUE(e.isObject());
        const std::string &ph = e.stringAt("ph");
        if (ph == "M") {
            continue;
        }
        EXPECT_NE(e.find("pid"), nullptr);
        EXPECT_NE(e.find("ts"), nullptr);
        const stats::JsonValue *cat = e.find("cat");
        if (ph == "C") {
            saw_counter = e.stringAt("name") == "test_counter";
            continue;
        }
        ASSERT_EQ(ph, "X");
        ASSERT_NE(cat, nullptr);
        if (cat->asString() == "wall" &&
            e.stringAt("name") == "export.span") {
            saw_wall = true;
            // Span args survive into the export alongside the ids.
            const stats::JsonValue *args = e.find("args");
            ASSERT_NE(args, nullptr);
            EXPECT_EQ(args->stringAt("bytes"), "128");
            EXPECT_NE(args->find("span_id"), nullptr);
            EXPECT_NE(args->find("parent_id"), nullptr);
        }
        if (cat->asString() == "sim.step") {
            saw_step = true;
        }
        if (cat->asString() == "sim.phase" &&
            e.stringAt("name") == "test-phase") {
            saw_phase_envelope = true;
            // Envelope of both steps: [0, 1.5us) -> 1.5us duration.
            EXPECT_DOUBLE_EQ(e.numberAt("dur"), 1.5);
        }
    }
    EXPECT_TRUE(saw_wall);
    EXPECT_TRUE(saw_step);
    EXPECT_TRUE(saw_counter);
    EXPECT_TRUE(saw_phase_envelope);
}

TEST_F(ObsTest, PrometheusExportDeclaresEveryFamilyOnce)
{
    ScopedEnable on(true, false);
    Registry::instance().counter("test_prom_total", "a counter", {{"k", "a"}})
        .add(2);
    Registry::instance().counter("test_prom_total", "a counter", {{"k", "b"}})
        .add(3);
    Registry::instance().histogram("test_prom_hist", "a histogram", {10, 100})
        .observe(7);
    std::string text = exportPrometheus();

    // One TYPE line per family even with several label sets.
    std::size_t first = text.find("# TYPE test_prom_total counter");
    ASSERT_NE(first, std::string::npos);
    EXPECT_EQ(text.find("# TYPE test_prom_total counter", first + 1),
              std::string::npos);
    EXPECT_NE(text.find("test_prom_total{k=\"a\"} 2"), std::string::npos);
    EXPECT_NE(text.find("test_prom_total{k=\"b\"} 3"), std::string::npos);
    // Histogram renders cumulative buckets plus +Inf/sum/count.
    EXPECT_NE(text.find("test_prom_hist_bucket{le=\"10\"} 1"),
              std::string::npos);
    EXPECT_NE(text.find("test_prom_hist_bucket{le=\"+Inf\"} 1"),
              std::string::npos);
    EXPECT_NE(text.find("test_prom_hist_sum 7"), std::string::npos);
    EXPECT_NE(text.find("test_prom_hist_count 1"), std::string::npos);
}

TEST_F(ObsTest, MetricsJsonExportParses)
{
    ScopedEnable on(true, false);
    Registry::instance().counter("test_json_total", "t").add(9);
    Result<stats::JsonValue> doc = stats::parseJson(exportMetricsJson());
    ASSERT_TRUE(doc.isOk()) << doc.status().toString();
    const stats::JsonValue *metrics = doc->find("metrics");
    ASSERT_NE(metrics, nullptr);
    bool found = false;
    for (const stats::JsonValue &m : metrics->asArray()) {
        if (m.stringAt("name") == "test_json_total") {
            found = true;
            EXPECT_EQ(m.stringAt("kind"), "counter");
            EXPECT_DOUBLE_EQ(m.numberAt("value"), 9.0);
        }
    }
    EXPECT_TRUE(found);
}

TEST_F(ObsTest, KernelTimerAccumulatesBytes)
{
    ScopedEnable on(true, false);
    KernelMetrics &km = kernelMetrics("obs_test_kernel");
    {
        KernelTimer timer(km, 4096);
    }
    EXPECT_EQ(km.bytes_total.value(), 4096u);
    // Wall time is nonzero but unpredictable; just require it moved.
    EXPECT_GT(km.wall_ns_total.value(), 0u);
}

/**
 * First-appearance phase order of the recorded sim steps — the same
 * convention BootTrace::phases() uses (launches revisit phases, e.g.
 * vmm work between pre-encryption batches, so consecutive-dedup would
 * not match).
 */
std::vector<std::string>
recordedPhaseOrder(const std::vector<TraceEvent> &events)
{
    std::vector<std::string> order;
    std::set<std::string> seen;
    for (const TraceEvent &e : events) {
        if (e.kind != TraceEventKind::kSimStep) {
            continue;
        }
        for (const auto &[k, v] : e.args) {
            if (k == "phase" && seen.insert(v).second) {
                order.push_back(v);
            }
        }
    }
    return order;
}

TEST_F(ObsTest, EveryStrategyProducesAFaithfulSpanTree)
{
    const core::StrategyKind kinds[] = {
        core::StrategyKind::kStockFirecracker,
        core::StrategyKind::kQemuOvmfSev,
        core::StrategyKind::kSevDirectBoot,
        core::StrategyKind::kSeveriFastBz,
        core::StrategyKind::kSeveriFastVmlinux,
    };
    for (core::StrategyKind kind : kinds) {
        SCOPED_TRACE(core::strategyName(kind));
        TraceLog::instance().clear();
        ScopedEnable on(true, true);

        core::Platform platform(sim::CostParams::deterministic());
        core::LaunchRequest request;
        request.scale = 1.0 / 32.0;
        Result<core::LaunchResult> result =
            core::makeStrategy(kind)->launch(platform, request);
        ASSERT_TRUE(result.isOk()) << result.status().toString();

        std::vector<TraceEvent> events = TraceLog::instance().snapshot();

        // The wall-span tree has exactly one root: the "launch" span
        // every BootStrategy::launch opens.
        std::set<u64> ids;
        std::size_t roots = 0;
        for (const TraceEvent &e : events) {
            if (e.kind == TraceEventKind::kWallSpan) {
                ids.insert(e.id);
                if (e.parent == 0) {
                    EXPECT_EQ(e.name, "launch");
                    ++roots;
                }
            }
        }
        EXPECT_EQ(roots, 1u);
        for (const TraceEvent &e : events) {
            if (e.kind == TraceEventKind::kWallSpan && e.parent != 0) {
                EXPECT_TRUE(ids.contains(e.parent))
                    << e.name << " has a dangling parent";
            }
        }

        // Sim steps replay the launch's phase order exactly, and cover
        // >= 95% of the simulated duration (here: 100% - every charged
        // step is recorded).
        EXPECT_EQ(recordedPhaseOrder(events), result->trace.phases());
        u64 covered = 0;
        u64 end = 0;
        for (const TraceEvent &e : events) {
            if (e.kind == TraceEventKind::kSimStep) {
                covered += e.dur_ns;
                end = std::max(end, e.start_ns + e.dur_ns);
            }
        }
        ASSERT_GT(end, 0u);
        EXPECT_EQ(end, static_cast<u64>(result->trace.total().ns()));
        EXPECT_GE(static_cast<double>(covered), 0.95 * end);
    }
}

TEST_F(ObsTest, LaunchIsMetricFreeWhenDisabled)
{
    core::Platform platform(sim::CostParams::deterministic());
    core::LaunchRequest request;
    request.scale = 1.0 / 32.0;
    Result<core::LaunchResult> result =
        core::makeStrategy(core::StrategyKind::kSeveriFastBz)
            ->launch(platform, request);
    ASSERT_TRUE(result.isOk());
    EXPECT_EQ(TraceLog::instance().size(), 0u);
    for (const MetricSnapshot &m : Registry::instance().snapshot()) {
        if (m.kind == MetricKind::kCounter) {
            EXPECT_EQ(m.counter_value, 0u) << m.name;
        }
    }
}

} // namespace
} // namespace sevf::obs
