/**
 * @file
 * Tests for the host-parallel execution layer (base/parallel.h) and the
 * property the whole PR hangs on: parallelism is bit-for-bit invisible.
 * Every strategy must produce the same launch measurement, attestation
 * outcome, and simulated trace totals at every host_threads value.
 */
#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

#include "base/parallel.h"
#include "core/launch.h"
#include "workload/synthetic.h"

namespace sevf {
namespace {

// ---- ThreadPool unit tests -----------------------------------------------

TEST(ThreadPool, CoversRangeExactlyOnce)
{
    base::ThreadPool pool(4);
    std::vector<std::atomic<int>> hits(1000);
    pool.parallelFor(0, 1000, 7, [&](u64 lo, u64 hi) {
        for (u64 i = lo; i < hi; ++i) {
            hits[i].fetch_add(1);
        }
    });
    for (const auto &h : hits) {
        EXPECT_EQ(h.load(), 1);
    }
}

TEST(ThreadPool, EmptyRangeRunsNothing)
{
    base::ThreadPool pool(4);
    std::atomic<int> calls{0};
    pool.parallelFor(10, 10, 4, [&](u64, u64) { calls.fetch_add(1); });
    pool.parallelFor(10, 5, 4, [&](u64, u64) { calls.fetch_add(1); });
    EXPECT_EQ(calls.load(), 0);
}

TEST(ThreadPool, GrainLargerThanRangeIsOneChunk)
{
    base::ThreadPool pool(4);
    std::atomic<int> calls{0};
    u64 seen_lo = 99, seen_hi = 0;
    pool.parallelFor(3, 9, 1000, [&](u64 lo, u64 hi) {
        calls.fetch_add(1);
        seen_lo = lo;
        seen_hi = hi;
    });
    EXPECT_EQ(calls.load(), 1);
    EXPECT_EQ(seen_lo, 3u);
    EXPECT_EQ(seen_hi, 9u);
}

TEST(ThreadPool, ZeroGrainTreatedAsOne)
{
    base::ThreadPool pool(2);
    std::atomic<u64> sum{0};
    pool.parallelFor(0, 10, 0, [&](u64 lo, u64 hi) {
        EXPECT_EQ(hi, lo + 1);
        sum.fetch_add(lo);
    });
    EXPECT_EQ(sum.load(), 45u);
}

TEST(ThreadPool, ExceptionPropagatesToCaller)
{
    base::ThreadPool pool(4);
    EXPECT_THROW(
        pool.parallelFor(0, 100, 1,
                         [&](u64 lo, u64) {
                             if (lo == 42) {
                                 std::vector<int> v;
                                 (void)v.at(3); // throws out_of_range
                             }
                         }),
        std::out_of_range);
    // The pool must still be usable after an exceptional job.
    std::atomic<int> calls{0};
    pool.parallelFor(0, 8, 2, [&](u64, u64) { calls.fetch_add(1); });
    EXPECT_EQ(calls.load(), 4);
}

TEST(ThreadPool, SingleThreadPoolRunsInline)
{
    base::ThreadPool pool(1);
    EXPECT_EQ(pool.threads(), 1u);
    std::vector<u64> order;
    pool.parallelFor(0, 6, 2, [&](u64 lo, u64) { order.push_back(lo); });
    EXPECT_EQ(order, (std::vector<u64>{0, 2, 4}));
}

TEST(ParallelForFree, RespectsHostThreadsKnob)
{
    EXPECT_EQ(base::hostThreads(), 1u); // serial is the process default
    {
        base::ScopedHostThreads scope(4);
        EXPECT_EQ(base::hostThreads(), 4u);
        std::vector<std::atomic<int>> hits(256);
        base::parallelFor(0, 256, 16, [&](u64 lo, u64 hi) {
            for (u64 i = lo; i < hi; ++i) {
                hits[i].fetch_add(1);
            }
        });
        for (const auto &h : hits) {
            EXPECT_EQ(h.load(), 1);
        }
    }
    EXPECT_EQ(base::hostThreads(), 1u);
}

TEST(ParallelForFree, NestedCallDegradesToSerial)
{
    base::ScopedHostThreads scope(4);
    std::atomic<int> inner_chunks{0};
    base::parallelFor(0, 4, 1, [&](u64, u64) {
        // A nested parallelFor inside a chunk body must run inline
        // (the outer call holds the pool); it still covers its range.
        base::parallelFor(0, 10, 2,
                          [&](u64, u64) { inner_chunks.fetch_add(1); });
    });
    EXPECT_EQ(inner_chunks.load(), 4 * 5);
}

// ---- Serial-vs-parallel launch equivalence -------------------------------

class ParallelEquivalenceTest
    : public ::testing::TestWithParam<core::StrategyKind>
{
};

TEST_P(ParallelEquivalenceTest, ResultsIdenticalAtEveryThreadCount)
{
    core::LaunchRequest request;
    request.scale = 1.0 / 32.0;

    // Reference: fully serial launch.
    request.host_threads = 1;
    core::Platform serial_platform(sim::CostParams::deterministic());
    Result<core::LaunchResult> serial =
        core::makeStrategy(GetParam())->launch(serial_platform, request);
    ASSERT_TRUE(serial.isOk()) << serial.status().toString();

    for (unsigned threads : {2u, 8u}) {
        request.host_threads = threads;
        core::Platform platform(sim::CostParams::deterministic());
        Result<core::LaunchResult> parallel =
            core::makeStrategy(GetParam())->launch(platform, request);
        ASSERT_TRUE(parallel.isOk())
            << "host_threads=" << threads << ": "
            << parallel.status().toString();

        // The launch measurement is the strongest witness: it chains
        // SHA-256 over every measured page in order.
        EXPECT_EQ(parallel->measurement, serial->measurement)
            << "measurement differs at host_threads=" << threads;
        EXPECT_EQ(parallel->attested, serial->attested);
        EXPECT_EQ(parallel->provisioned_secret_bytes,
                  serial->provisioned_secret_bytes);
        EXPECT_EQ(parallel->pre_encrypted_bytes,
                  serial->pre_encrypted_bytes);
        // Simulated time must not observe host parallelism.
        EXPECT_EQ(parallel->totalTime(), serial->totalTime())
            << "trace total differs at host_threads=" << threads;
        EXPECT_EQ(parallel->bootTime(), serial->bootTime());
        EXPECT_EQ(parallel->verifier_stats.bytes_hashed,
                  serial->verifier_stats.bytes_hashed);
    }
}

INSTANTIATE_TEST_SUITE_P(
    AllStrategies, ParallelEquivalenceTest,
    ::testing::Values(core::StrategyKind::kStockFirecracker,
                      core::StrategyKind::kQemuOvmfSev,
                      core::StrategyKind::kSevDirectBoot,
                      core::StrategyKind::kSeveriFastBz,
                      core::StrategyKind::kSeveriFastVmlinux),
    [](const ::testing::TestParamInfo<core::StrategyKind> &info) {
        std::string name = core::strategyName(info.param);
        for (char &c : name) {
            if (c == '-') {
                c = '_';
            }
        }
        return name;
    });

} // namespace
} // namespace sevf
