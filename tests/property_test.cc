/**
 * @file
 * Property-based tests: randomized sweeps over the substrates'
 * invariants - codec round-trips on arbitrary data, a shadow-model
 * check of encrypted guest memory, RMP invariants under random
 * operation sequences, PSP-vs-tool measurement equality on random
 * launch plans, DES scheduling laws, and page-table totality.
 */
#include <gtest/gtest.h>

#include <map>

#include "attest/expected_measurement.h"
#include "base/bytes.h"
#include "base/rng.h"
#include "compress/codec.h"
#include "memory/guest_memory.h"
#include "memory/page_table.h"
#include "psp/psp.h"
#include "sim/des.h"
#include "workload/synthetic.h"

namespace sevf {
namespace {

constexpr Spa kSpaBase = 0x100000000ull;

// ----------------------------------------------------- codec round-trip

class CodecFuzz : public ::testing::TestWithParam<u64>
{
};

TEST_P(CodecFuzz, RoundTripsArbitraryData)
{
    // Random size, random compressibility, random content per seed.
    Rng rng(GetParam());
    u64 size = rng.nextBelow(200000);
    double fraction = rng.nextDouble();
    ByteVec data = workload::compressibleBytes(size, fraction, rng.next());

    for (auto kind :
         {compress::CodecKind::kLz4, compress::CodecKind::kLzss}) {
        const compress::Codec &codec = compress::codecFor(kind);
        ByteVec stream = codec.compress(data);
        Result<ByteVec> back = codec.decompress(stream);
        ASSERT_TRUE(back.isOk())
            << codec.name() << " seed=" << GetParam() << " size=" << size;
        EXPECT_EQ(*back, data) << codec.name();
    }
}

TEST_P(CodecFuzz, TruncationNeverCrashesAlwaysFailsOrDiffers)
{
    Rng rng(GetParam() ^ 0x7100);
    ByteVec data =
        workload::compressibleBytes(1000 + rng.nextBelow(50000), 0.3,
                                    rng.next());
    const compress::Codec &lz4 =
        compress::codecFor(compress::CodecKind::kLz4);
    ByteVec stream = lz4.compress(data);
    // Random truncation point (possibly inside the header).
    ByteVec cut(stream.begin(),
                stream.begin() + rng.nextBelow(stream.size()));
    Result<ByteVec> back = lz4.decompress(cut);
    if (back.isOk()) {
        EXPECT_NE(*back, data);
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CodecFuzz,
                         ::testing::Range<u64>(1, 21));

// ---------------------------------------------- guest memory vs shadow

class MemoryShadowFuzz : public ::testing::TestWithParam<u64>
{
};

TEST_P(MemoryShadowFuzz, EncryptedMemoryMatchesPlainShadow)
{
    // Apply a random sequence of guest writes at arbitrary (unaligned)
    // offsets/lengths to C-bit memory and to a plain shadow buffer;
    // the guest's decrypted view must equal the shadow at every probe.
    Rng rng(GetParam() ^ 0x5ade);
    constexpr u64 kRegion = 64 * kPageSize;
    memory::GuestMemory mem(kRegion, kSpaBase, 5);
    crypto::Aes128Key key, tweak;
    rng.fill(key);
    rng.fill(tweak);
    mem.attachEncryption(
        std::make_unique<crypto::XexCipher>(key, tweak));
    for (Gpa p = 0; p < kRegion; p += kPageSize) {
        ASSERT_TRUE(mem.rmp().rmpUpdate(mem.spaOf(p), 5, p, true).isOk());
        ASSERT_TRUE(mem.rmp().pvalidate(mem.spaOf(p), 5, p, true).isOk());
    }

    ByteVec shadow(kRegion, 0);
    // Initialize both sides identically (encrypted memory starts as
    // garbage plaintext, the shadow as zero - write everything once).
    ASSERT_TRUE(mem.guestWrite(0, shadow, true).isOk());

    for (int op = 0; op < 200; ++op) {
        u64 off = rng.nextBelow(kRegion - 1);
        u64 len = 1 + rng.nextBelow(std::min<u64>(kRegion - off, 9000));
        ByteVec chunk(len);
        rng.fill(chunk);
        ASSERT_TRUE(mem.guestWrite(off, chunk, true).isOk());
        std::copy(chunk.begin(), chunk.end(), shadow.begin() + off);

        // Random probe.
        u64 probe_off = rng.nextBelow(kRegion - 1);
        u64 probe_len =
            1 + rng.nextBelow(std::min<u64>(kRegion - probe_off, 5000));
        Result<ByteVec> got = mem.guestRead(probe_off, probe_len, true);
        ASSERT_TRUE(got.isOk());
        EXPECT_EQ(*got, ByteVec(shadow.begin() + probe_off,
                                shadow.begin() + probe_off + probe_len))
            << "op=" << op << " off=" << probe_off;
    }

    // Full sweep at the end.
    EXPECT_EQ(*mem.guestRead(0, kRegion, true), shadow);
    // And the host never saw the plaintext.
    EXPECT_NE(*mem.hostRead(0, kRegion), shadow);
}

INSTANTIATE_TEST_SUITE_P(Seeds, MemoryShadowFuzz,
                         ::testing::Range<u64>(1, 9));

// ----------------------------------------------------- RMP invariants

TEST(RmpInvariants, RandomOpSequencesKeepExclusivity)
{
    // Invariant: at all times, a page is writable by the host XOR
    // accessible by its guest (or neither) - never both.
    Rng rng(0x1a2b);
    constexpr u64 kPages = 64;
    memory::Rmp rmp(kSpaBase, kPages);

    for (int op = 0; op < 3000; ++op) {
        Spa spa = kSpaBase + rng.nextBelow(kPages) * kPageSize;
        Gpa gpa = rng.nextBelow(kPages) * kPageSize;
        u32 asid = 1 + static_cast<u32>(rng.nextBelow(3));
        switch (rng.nextBelow(4)) {
          case 0:
            (void)rmp.rmpUpdate(spa, asid, gpa, true);
            break;
          case 1:
            (void)rmp.rmpUpdate(spa, asid, gpa, false);
            break;
          case 2:
            (void)rmp.pvalidate(spa, asid, gpa, true);
            break;
          case 3:
            (void)rmp.pspAssignValidated(spa, asid, gpa);
            break;
        }

        for (u64 page = 0; page < kPages; ++page) {
            Spa s = kSpaBase + page * kPageSize;
            const memory::RmpEntry &e = rmp.entryAt(s);
            bool host_ok = rmp.checkHostWrite(s).isOk();
            bool guest_ok =
                e.assigned &&
                rmp.checkGuestAccess(s, e.asid, e.gpa).isOk();
            EXPECT_FALSE(host_ok && guest_ok) << "page " << page;
            // Validated implies assigned.
            if (e.validated) {
                EXPECT_TRUE(e.assigned);
            }
        }
    }
}

// ------------------------------------------- measurement: tool == PSP

class MeasurementFuzz : public ::testing::TestWithParam<u64>
{
};

TEST_P(MeasurementFuzz, ExpectedToolAlwaysMatchesPsp)
{
    Rng rng(GetParam() ^ 0xd16e);
    psp::KeyServer ks;
    psp::Psp psp("CHIP-FUZZ-" + std::to_string(GetParam()), ks,
                 GetParam());
    memory::GuestMemory mem(8 * kMiB, kSpaBase, psp.allocateAsid());
    psp::GuestHandle h = *psp.launchStart(mem, 0x30000);

    // Random non-overlapping page-aligned regions of random content.
    std::vector<attest::PreEncryptedRegion> plan;
    Gpa next_gpa = 0;
    int regions = 1 + static_cast<int>(rng.nextBelow(6));
    for (int i = 0; i < regions; ++i) {
        u64 len = 1 + rng.nextBelow(3 * kPageSize);
        ByteVec bytes(len);
        rng.fill(bytes);
        ASSERT_TRUE(mem.hostWrite(next_gpa, bytes).isOk());
        ASSERT_TRUE(psp.launchUpdateData(h, mem, next_gpa, len).isOk());
        plan.push_back({"r" + std::to_string(i), next_gpa,
                        std::move(bytes)});
        next_gpa += alignUp(len, kPageSize) + kPageSize;
    }
    // Random number of VMSAs.
    u32 vcpus = 1 + static_cast<u32>(rng.nextBelow(4));
    for (u32 cpu = 0; cpu < vcpus; ++cpu) {
        ASSERT_TRUE(psp.launchUpdateVmsa(h, mem, cpu,
                                         0x400000 + cpu * kPageSize)
                        .isOk());
    }

    attest::VmsaInfo vmsa{vcpus, 0x30000, 0x400000};
    EXPECT_EQ(*psp.launchMeasure(h),
              attest::expectedMeasurement(plan, vmsa));
}

INSTANTIATE_TEST_SUITE_P(Seeds, MeasurementFuzz,
                         ::testing::Range<u64>(1, 13));

// ----------------------------------------------------- DES scheduling

class DesFuzz : public ::testing::TestWithParam<u64>
{
};

TEST_P(DesFuzz, SchedulingLaws)
{
    // Random traces; check: (1) each VM's completion >= its own total,
    // (2) makespan >= total PSP demand, (3) makespan <= sum of all
    // trace totals (single resource cannot be worse than full serial),
    // (4) psp_wait is non-negative and consistent with completion.
    Rng rng(GetParam() ^ 0xde5);
    int n = 2 + static_cast<int>(rng.nextBelow(12));
    std::vector<sim::BootTrace> traces;
    sim::Duration psp_demand;
    sim::Duration serial_total;
    for (int v = 0; v < n; ++v) {
        sim::BootTrace t;
        int steps = 1 + static_cast<int>(rng.nextBelow(6));
        for (int s = 0; s < steps; ++s) {
            sim::Duration d =
                sim::Duration::micros(1 + static_cast<i64>(
                                          rng.nextBelow(20000)));
            bool is_psp = rng.nextBelow(2) == 0;
            t.add(is_psp ? sim::StepKind::kPsp : sim::StepKind::kCpu, d,
                  sim::phase::kVmm, "s");
            if (is_psp) {
                psp_demand += d;
            }
        }
        serial_total += t.total();
        traces.push_back(std::move(t));
    }

    sim::ReplayResult r = sim::replayConcurrent(traces);
    sim::Duration makespan = r.maxCompletion();
    for (int v = 0; v < n; ++v) {
        EXPECT_GE(r.completion[v], traces[v].total()) << "vm " << v;
        EXPECT_GE(r.psp_wait[v], sim::Duration::zero());
        EXPECT_EQ(r.completion[v],
                  traces[v].total() + r.psp_wait[v])
            << "completion decomposes into own work + psp queueing";
    }
    EXPECT_GE(makespan, psp_demand);
    EXPECT_LE(makespan, serial_total);
}

INSTANTIATE_TEST_SUITE_P(Seeds, DesFuzz, ::testing::Range<u64>(1, 17));

// --------------------------------------------------- page-table totality

class PageTableFuzz : public ::testing::TestWithParam<u64>
{
};

TEST_P(PageTableFuzz, IdentityMapIsTotalAndExact)
{
    Rng rng(GetParam() ^ 0x9a6e);
    u64 map_bytes =
        alignUp(kHugePageSize + rng.nextBelow(3 * kGiB), kHugePageSize);
    memory::PageTableConfig cfg;
    cfg.root_gpa = 0;
    cfg.map_bytes = map_bytes;
    cfg.set_c_bit = rng.nextBelow(2) == 0;
    Result<ByteVec> tables = memory::buildIdentityTables(cfg);
    ASSERT_TRUE(tables.isOk());
    const ByteVec &t = *tables;
    memory::PageTableWalker walker(
        0, [&t](u64 pa) -> Result<u64> {
            if (pa + 8 > t.size()) {
                return errNotFound("outside tables");
            }
            return loadLe<u64>(t.data() + pa);
        });

    for (int probe = 0; probe < 200; ++probe) {
        u64 va = rng.nextBelow(map_bytes);
        Result<memory::WalkResult> w = walker.walk(va);
        ASSERT_TRUE(w.isOk()) << "va=" << va;
        EXPECT_EQ(w->pa, va);
        EXPECT_EQ(w->c_bit, cfg.set_c_bit);
    }
    // Just past the end of the map: never resolves.
    u64 beyond = alignUp(map_bytes, kGiB) + rng.nextBelow(kGiB);
    EXPECT_FALSE(walker.walk(beyond).isOk());
}

INSTANTIATE_TEST_SUITE_P(Seeds, PageTableFuzz,
                         ::testing::Range<u64>(1, 9));

} // namespace
} // namespace sevf
