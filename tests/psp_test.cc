/**
 * @file
 * PSP device tests: SEV-SNP launch state machine, measurement chain,
 * in-place pre-encryption, attestation report signing, key server.
 */
#include <gtest/gtest.h>

#include "base/bytes.h"
#include "crypto/measurement.h"
#include "memory/guest_memory.h"
#include "psp/attestation_report.h"
#include "psp/key_server.h"
#include "psp/psp.h"

namespace sevf::psp {
namespace {

class PspTest : public ::testing::Test
{
  protected:
    PspTest()
        : psp_("EPYC-7313P-SIM-0", ks_, 0xca11ab1e),
          mem_(4 * kMiB, 0x100000000ull, 0)
    {
    }

    /** Re-create guest memory with a PSP-allocated ASID. */
    memory::GuestMemory &
    freshMemory()
    {
        mem_storage_ = std::make_unique<memory::GuestMemory>(
            4 * kMiB, 0x100000000ull, psp_.allocateAsid());
        return *mem_storage_;
    }

    KeyServer ks_;
    Psp psp_;
    memory::GuestMemory mem_; // asid 0, for negative tests
    std::unique_ptr<memory::GuestMemory> mem_storage_;
};

TEST_F(PspTest, LaunchStartAttachesEncryption)
{
    memory::GuestMemory &mem = freshMemory();
    EXPECT_FALSE(mem.sevEnabled());
    Result<GuestHandle> h = psp_.launchStart(mem, /*policy=*/0x30000);
    ASSERT_TRUE(h.isOk());
    EXPECT_TRUE(mem.sevEnabled());
}

TEST_F(PspTest, LaunchStartRejectsAsidZero)
{
    EXPECT_FALSE(psp_.launchStart(mem_, 0).isOk());
}

TEST_F(PspTest, LaunchStartRejectsDoubleKeying)
{
    memory::GuestMemory &mem = freshMemory();
    ASSERT_TRUE(psp_.launchStart(mem, 0).isOk());
    EXPECT_FALSE(psp_.launchStart(mem, 0).isOk());
}

TEST_F(PspTest, UpdateMeasuresAndEncrypts)
{
    memory::GuestMemory &mem = freshMemory();
    GuestHandle h = *psp_.launchStart(mem, 0);

    ByteVec verifier = toBytes("minimal boot verifier");
    verifier.resize(2 * kPageSize, 0x90);
    ASSERT_TRUE(mem.hostWrite(0x8000, verifier).isOk());
    ASSERT_TRUE(
        psp_.launchUpdateData(h, mem, 0x8000, verifier.size()).isOk());

    EXPECT_EQ(*psp_.measuredPageCount(h), 2u);
    // Memory is now ciphertext for the host, plaintext for the guest.
    EXPECT_NE(*mem.hostRead(0x8000, 64),
              ByteVec(verifier.begin(), verifier.begin() + 64));
    EXPECT_EQ(*mem.guestRead(0x8000, verifier.size(), true), verifier);
}

TEST_F(PspTest, MeasurementMatchesManualChain)
{
    memory::GuestMemory &mem = freshMemory();
    GuestHandle h = *psp_.launchStart(mem, 0);

    ByteVec region_a(kPageSize, 0x11);
    ByteVec region_b(3000, 0x22); // sub-page: tail is zero-padded
    ASSERT_TRUE(mem.hostWrite(0x4000, region_a).isOk());
    ASSERT_TRUE(mem.hostWrite(0x10000, region_b).isOk());
    ASSERT_TRUE(psp_.launchUpdateData(h, mem, 0x4000, region_a.size()).isOk());
    ASSERT_TRUE(psp_.launchUpdateData(h, mem, 0x10000, region_b.size()).isOk());

    crypto::LaunchDigest manual;
    manual.extendRegion(crypto::MeasuredPageType::kNormal, 0x4000, region_a);
    manual.extendRegion(crypto::MeasuredPageType::kNormal, 0x10000, region_b);
    EXPECT_EQ(*psp_.launchMeasure(h), manual.value());
}

TEST_F(PspTest, FinishLocksTheLaunchFlow)
{
    memory::GuestMemory &mem = freshMemory();
    GuestHandle h = *psp_.launchStart(mem, 0);
    ByteVec page(kPageSize, 0x33);
    ASSERT_TRUE(mem.hostWrite(0, page).isOk());
    ASSERT_TRUE(psp_.launchUpdateData(h, mem, 0, kPageSize).isOk());
    ASSERT_TRUE(psp_.launchFinish(h).isOk());

    // The §2.4 property: no more pre-encryption after finish.
    ASSERT_TRUE(mem.hostWrite(0x1000, page).isOk());
    Status late = psp_.launchUpdateData(h, mem, 0x1000, kPageSize);
    EXPECT_EQ(late.code(), ErrorCode::kInvalidState);
    // And finishing twice is also rejected.
    EXPECT_FALSE(psp_.launchFinish(h).isOk());
}

TEST_F(PspTest, ReportOnlyAfterFinish)
{
    memory::GuestMemory &mem = freshMemory();
    GuestHandle h = *psp_.launchStart(mem, 0);
    ReportData rdata{};
    EXPECT_FALSE(psp_.guestRequestReport(h, rdata).isOk());
    ASSERT_TRUE(psp_.launchFinish(h).isOk());
    EXPECT_TRUE(psp_.guestRequestReport(h, rdata).isOk());
}

TEST_F(PspTest, ReportBindsMeasurementAndData)
{
    memory::GuestMemory &mem = freshMemory();
    GuestHandle h = *psp_.launchStart(mem, 0x5);
    ByteVec page(kPageSize, 0x44);
    ASSERT_TRUE(mem.hostWrite(0, page).isOk());
    ASSERT_TRUE(psp_.launchUpdateData(h, mem, 0, kPageSize).isOk());
    ASSERT_TRUE(psp_.launchFinish(h).isOk());

    ReportData rdata{};
    rdata[0] = 0xaa;
    Result<AttestationReport> report = psp_.guestRequestReport(h, rdata);
    ASSERT_TRUE(report.isOk());
    EXPECT_EQ(report->measurement, *psp_.launchMeasure(h));
    EXPECT_EQ(report->policy, 0x5u);
    EXPECT_EQ(report->chip_id, "EPYC-7313P-SIM-0");
    EXPECT_TRUE(report->verify(*ks_.keyFor(report->chip_id)));
}

TEST_F(PspTest, UnknownHandleRejected)
{
    EXPECT_FALSE(psp_.launchFinish(999).isOk());
    EXPECT_FALSE(psp_.launchMeasure(999).isOk());
}

TEST_F(PspTest, DistinctGuestsGetDistinctKeys)
{
    memory::GuestMemory a(64 * kPageSize, 0x100000000ull,
                          psp_.allocateAsid());
    memory::GuestMemory b(64 * kPageSize, 0x100000000ull,
                          psp_.allocateAsid());
    GuestHandle ha = *psp_.launchStart(a, 0);
    GuestHandle hb = *psp_.launchStart(b, 0);
    (void)ha;
    (void)hb;
    // Same plaintext, same GPA, same SPA base: only the keys differ.
    ByteVec page(kPageSize, 0x77);
    ASSERT_TRUE(a.hostWrite(0, page).isOk());
    ASSERT_TRUE(b.hostWrite(0, page).isOk());
    ASSERT_TRUE(a.pspEncryptInPlace(0, kPageSize).isOk());
    ASSERT_TRUE(b.pspEncryptInPlace(0, kPageSize).isOk());
    EXPECT_NE(*a.hostRead(0, kPageSize), *b.hostRead(0, kPageSize));
}


TEST_F(PspTest, VmsaMeasuredOnSnp)
{
    memory::GuestMemory &mem = freshMemory();
    GuestHandle h = *psp_.launchStart(mem, 0x30000);
    ASSERT_TRUE(psp_.launchUpdateVmsa(h, mem, 0, 0x5000).isOk());
    EXPECT_EQ(*psp_.measuredPageCount(h), 1u);
    // Encrypted + locked like any launch page.
    EXPECT_FALSE(mem.hostWrite(0x5000, ByteVec(16, 0)).isOk());
    // Digest depends on the vCPU index.
    memory::GuestMemory other(4 * kMiB, 0x100000000ull,
                              psp_.allocateAsid());
    GuestHandle h2 = *psp_.launchStart(other, 0x30000);
    ASSERT_TRUE(psp_.launchUpdateVmsa(h2, other, 1, 0x5000).isOk());
    EXPECT_NE(*psp_.launchMeasure(h), *psp_.launchMeasure(h2));
}

TEST_F(PspTest, VmsaRejectedOnBaseSev)
{
    memory::GuestMemory mem(4 * kMiB, 0x100000000ull, psp_.allocateAsid(),
                            memory::SevMode::kSev);
    GuestHandle h = *psp_.launchStart(mem, 0);
    Status s = psp_.launchUpdateVmsa(h, mem, 0, 0x5000);
    EXPECT_EQ(s.code(), ErrorCode::kUnsupported);
}

TEST_F(PspTest, VmsaRejectedAfterFinish)
{
    memory::GuestMemory &mem = freshMemory();
    GuestHandle h = *psp_.launchStart(mem, 0);
    ASSERT_TRUE(psp_.launchFinish(h).isOk());
    EXPECT_EQ(psp_.launchUpdateVmsa(h, mem, 0, 0x5000).code(),
              ErrorCode::kInvalidState);
}

TEST_F(PspTest, VmsaSynthesizerDeterministic)
{
    ByteVec a = synthesizeVmsa(0, 0x30000);
    ByteVec b = synthesizeVmsa(0, 0x30000);
    ByteVec c = synthesizeVmsa(1, 0x30000);
    ByteVec d = synthesizeVmsa(0, 0x30001);
    EXPECT_EQ(a, b);
    EXPECT_NE(a, c);
    EXPECT_NE(a, d);
    EXPECT_EQ(a.size(), kPageSize);
}


TEST_F(PspTest, SharedKeyLaunchSharesCryptoDomain)
{
    // Future-work extension (§6.2): key sharing works, and its cost is
    // visible - same plaintext at the same SPA encrypts identically
    // across guests, unlike per-VM keys.
    memory::GuestMemory a(64 * kPageSize, 0x100000000ull,
                          psp_.allocateAsid());
    memory::GuestMemory b(64 * kPageSize, 0x100000000ull,
                          psp_.allocateAsid());
    ASSERT_TRUE(psp_.launchStartShared(a, 0).isOk());
    ASSERT_TRUE(psp_.launchStartShared(b, 0).isOk());
    ByteVec page(kPageSize, 0x42);
    ASSERT_TRUE(a.hostWrite(0, page).isOk());
    ASSERT_TRUE(b.hostWrite(0, page).isOk());
    ASSERT_TRUE(a.pspEncryptInPlace(0, kPageSize).isOk());
    ASSERT_TRUE(b.pspEncryptInPlace(0, kPageSize).isOk());
    EXPECT_EQ(*a.hostRead(0, kPageSize), *b.hostRead(0, kPageSize));
}

TEST_F(PspTest, SharedKeyLaunchStillMeasuresAndLocks)
{
    memory::GuestMemory &mem = freshMemory();
    Result<GuestHandle> h = psp_.launchStartShared(mem, 0x30000);
    ASSERT_TRUE(h.isOk());
    ByteVec page(kPageSize, 0x11);
    ASSERT_TRUE(mem.hostWrite(0, page).isOk());
    ASSERT_TRUE(psp_.launchUpdateData(*h, mem, 0, kPageSize).isOk());
    ASSERT_TRUE(psp_.launchFinish(*h).isOk());
    EXPECT_FALSE(psp_.launchUpdateData(*h, mem, 0x1000, kPageSize).isOk());
    EXPECT_TRUE(psp_.guestRequestReport(*h, ReportData{}).isOk());
}

// ----------------------------------------------------------- reports

TEST(AttestationReportWire, SerializeParseRoundTrip)
{
    AttestationReport rep;
    rep.chip_id = "CHIP-42";
    rep.policy = 0x30000;
    rep.asid = 9;
    rep.measurement.fill(0xab);
    rep.report_data.fill(0xcd);
    ChipKey key{};
    key.fill(0x55);
    rep.sign(key);

    Result<AttestationReport> back = AttestationReport::parse(rep.serialize());
    ASSERT_TRUE(back.isOk());
    EXPECT_EQ(back->chip_id, "CHIP-42");
    EXPECT_EQ(back->policy, 0x30000u);
    EXPECT_EQ(back->measurement, rep.measurement);
    EXPECT_TRUE(back->verify(key));
}

TEST(AttestationReportWire, TamperBreaksSignature)
{
    AttestationReport rep;
    rep.chip_id = "CHIP-1";
    rep.measurement.fill(0x01);
    ChipKey key{};
    key.fill(0x66);
    rep.sign(key);

    ByteVec wire = rep.serialize();
    // Flip a measurement byte in the wire image.
    wire[4 + 4 + rep.chip_id.size() + 4 + 4] ^= 0xff;
    Result<AttestationReport> back = AttestationReport::parse(wire);
    ASSERT_TRUE(back.isOk());
    EXPECT_FALSE(back->verify(key));
}

TEST(AttestationReportWire, RejectsTruncation)
{
    AttestationReport rep;
    rep.chip_id = "CHIP-1";
    ByteVec wire = rep.serialize();
    // The explicit floor keeps GCC's stringop-overflow analysis from
    // seeing a potential size_t wrap under -fsanitize instrumentation.
    size_t keep = wire.size() > 10 ? wire.size() - 10 : 0;
    wire.resize(keep);
    EXPECT_FALSE(AttestationReport::parse(wire).isOk());
}

TEST(AttestationReportWire, RejectsTrailingBytes)
{
    AttestationReport rep;
    rep.chip_id = "CHIP-1";
    ByteVec wire = rep.serialize();
    wire.push_back(0);
    EXPECT_FALSE(AttestationReport::parse(wire).isOk());
}

// --------------------------------------------------------- key server

TEST(KeyServerTest, ProvisionOnceLookupMany)
{
    KeyServer ks;
    ChipKey k{};
    k.fill(7);
    ASSERT_TRUE(ks.provision("chip-a", k).isOk());
    EXPECT_FALSE(ks.provision("chip-a", k).isOk());
    EXPECT_TRUE(ks.keyFor("chip-a").isOk());
    EXPECT_FALSE(ks.keyFor("chip-b").isOk());
}

} // namespace
} // namespace sevf::psp
