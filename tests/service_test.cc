/**
 * @file
 * Multi-tenant launch-service tests: tenant registry validation, quota
 * plumbing into the scheduler and cache budgets, typed rejections
 * (unknown tenant, quota, injected service-enqueue fault), per-tenant
 * metrics, and workload-trace parse + replay.
 */
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "cache/template_cache.h"
#include "core/launch.h"
#include "fault/fault.h"
#include "obs/export.h"
#include "obs/metrics.h"
#include "obs/span.h"
#include "service/launch_service.h"
#include "service/tenant.h"
#include "service/trace_replay.h"
#include "stats/json.h"

namespace sevf {
namespace {

constexpr double kScale = 1.0 / 32.0;

core::LaunchRequest
smallRequest()
{
    core::LaunchRequest req;
    req.kernel = workload::KernelConfig::kAws;
    req.scale = kScale;
    req.attest = false;
    return req;
}

// ===================================================================
// TenantRegistry
// ===================================================================

TEST(TenantRegistryTest, ValidatesIdsAndWeights)
{
    service::TenantRegistry registry;
    EXPECT_EQ(registry.registerTenant("", {}).code(),
              ErrorCode::kInvalidArgument);
    service::TenantQuota zero_weight;
    zero_weight.weight = 0;
    EXPECT_EQ(registry.registerTenant("t", zero_weight).code(),
              ErrorCode::kInvalidArgument);

    service::TenantQuota quota;
    quota.weight = 3;
    quota.cache_share_bytes = 1000;
    ASSERT_TRUE(registry.registerTenant("t", quota).isOk());
    ASSERT_TRUE(registry.quota("t").has_value());
    EXPECT_EQ(registry.quota("t")->weight, 3u);
    EXPECT_FALSE(registry.quota("absent").has_value());

    // Re-registration updates in place.
    quota.weight = 5;
    ASSERT_TRUE(registry.registerTenant("t", quota).isOk());
    EXPECT_EQ(registry.quota("t")->weight, 5u);
    EXPECT_EQ(registry.ids().size(), 1u);
    EXPECT_EQ(registry.totalCacheShareBytes(), 1000u);
}

// ===================================================================
// LaunchService
// ===================================================================

TEST(LaunchServiceTest, UnknownTenantRejectsTyped)
{
    core::Platform platform(sim::CostParams::deterministic());
    service::TenantRegistry registry;
    service::LaunchService svc(platform, registry);
    auto ticket = svc.submit("nobody", core::StrategyKind::kSeveriFastBz,
                             smallRequest());
    ASSERT_TRUE(ticket->ready());
    Result<core::LaunchResult> r = ticket->take();
    ASSERT_FALSE(r.isOk());
    EXPECT_EQ(r.status().code(), ErrorCode::kNotFound);
}

TEST(LaunchServiceTest, RegisteredTenantsLaunchAndAreCounted)
{
    obs::ScopedEnable obs_on(/*metrics=*/true, /*tracing=*/false);
    obs::Registry::instance().reset();
    core::Platform platform(sim::CostParams::deterministic());
    service::TenantRegistry registry;
    service::ServiceConfig config;
    config.workers = 2;
    service::LaunchService svc(platform, registry, config);

    service::TenantQuota quota;
    quota.weight = 2;
    ASSERT_TRUE(svc.registerTenant("alpha", quota).isOk());
    ASSERT_TRUE(svc.registerTenant("beta", quota).isOk());

    std::vector<std::shared_ptr<core::LaunchTicket>> tickets;
    for (int i = 0; i < 3; ++i) {
        tickets.push_back(svc.submit(
            "alpha", core::StrategyKind::kSeveriFastBz, smallRequest()));
        tickets.push_back(svc.submit(
            "beta", core::StrategyKind::kSeveriFastBz, smallRequest()));
    }
    for (auto &ticket : tickets) {
        ASSERT_TRUE(ticket->take().isOk());
    }
    svc.drain();

    // Per-tenant counters: 3 submitted + 3 completed each, and the
    // latency histogram observed one sample per launch.
    obs::Registry &reg = obs::Registry::instance();
    for (const char *tenant : {"alpha", "beta"}) {
        obs::Labels labels{{"tenant", tenant}};
        EXPECT_EQ(reg.counter("sevf_service_submitted_total", "",
                              labels)
                      .value(),
                  3u)
            << tenant;
        EXPECT_EQ(reg.counter("sevf_service_completed_total", "",
                              labels)
                      .value(),
                  3u)
            << tenant;
        EXPECT_EQ(reg.counter("sevf_service_rejected_total", "", labels)
                      .value(),
                  0u)
            << tenant;
        EXPECT_EQ(reg.histogram("sevf_service_latency_ns", "",
                                obs::defaultTimeBoundsNs(), labels)
                      .snapshot()
                      .count,
                  3u)
            << tenant;
    }
}

TEST(LaunchServiceTest, QuotaShareProgramsCacheBudgets)
{
    core::Platform platform(sim::CostParams::deterministic());
    service::TenantRegistry registry;
    service::LaunchService svc(platform, registry);

    service::TenantQuota a;
    a.cache_share_bytes = 6u << 20;
    service::TenantQuota b;
    b.cache_share_bytes = 2u << 20;
    ASSERT_TRUE(svc.registerTenant("a", a).isOk());
    ASSERT_TRUE(svc.registerTenant("b", b).isOk());

    cache::TemplateCache &cache = platform.templateCache();
    EXPECT_EQ(cache.capacityBytes(), 8u << 20)
        << "global budget = sum of tenant shares";
    // Per-shard cap = fair slice x2 (slack for SHA-key skew).
    EXPECT_EQ(cache.shardCapacityBytes(),
              ((8u << 20) / cache.shardCount()) * 2 + 1);
}

TEST(LaunchServiceTest, ServiceEnqueueFaultRejectsTyped)
{
    Result<fault::FaultPlan> plan =
        fault::FaultPlan::parse("service-enqueue:nth=1");
    ASSERT_TRUE(plan.isOk()) << plan.status().toString();
    fault::ScopedFaultPlan armed(plan.take());

    core::Platform platform(sim::CostParams::deterministic());
    service::TenantRegistry registry;
    service::LaunchService svc(platform, registry);
    ASSERT_TRUE(svc.registerTenant("t", {}).isOk());

    // First submit hits the injected fault; second proceeds normally.
    auto faulted = svc.submit("t", core::StrategyKind::kSeveriFastBz,
                              smallRequest());
    ASSERT_TRUE(faulted->ready());
    Result<core::LaunchResult> r = faulted->take();
    ASSERT_FALSE(r.isOk());
    EXPECT_EQ(r.status().code(), ErrorCode::kUnavailable);

    auto ok = svc.submit("t", core::StrategyKind::kSeveriFastBz,
                         smallRequest());
    EXPECT_TRUE(ok->take().isOk());
}

TEST(LaunchServiceTest, TenantQuotaRejectionCountsPerTenant)
{
    obs::ScopedEnable obs_on(/*metrics=*/true, /*tracing=*/false);
    obs::Registry::instance().reset();
    core::Platform platform(sim::CostParams::deterministic());
    service::TenantRegistry registry;
    service::ServiceConfig config;
    config.workers = 1;
    service::LaunchService svc(platform, registry, config);

    service::TenantQuota tight;
    tight.max_queued = 1;
    ASSERT_TRUE(svc.registerTenant("tight", tight).isOk());

    std::vector<std::shared_ptr<core::LaunchTicket>> tickets;
    for (int i = 0; i < 6; ++i) {
        tickets.push_back(svc.submit(
            "tight", core::StrategyKind::kSeveriFastBz, smallRequest()));
    }
    u64 rejected = 0;
    for (auto &ticket : tickets) {
        Result<core::LaunchResult> r = ticket->take();
        if (!r.isOk()) {
            EXPECT_EQ(r.status().code(), ErrorCode::kQuotaExceeded);
            rejected++;
        }
    }
    EXPECT_GT(rejected, 0u);
    obs::Labels labels{{"tenant", "tight"}};
    EXPECT_EQ(obs::Registry::instance()
                  .counter("sevf_service_rejected_total", "", labels)
                  .value(),
              rejected);
}

// ===================================================================
// Workload-trace parse
// ===================================================================

TEST(TraceParseTest, ParsesTenantsEventsAndDefaults)
{
    const char *text = R"({
      "defaults": {"scale": 0.03125},
      "tenants": [
        {"id": "a", "weight": 4, "max_queued": 8,
         "cache_share_bytes": 1048576},
        {"id": "b"}
      ],
      "events": [
        {"tenant": "a", "strategy": "severifast", "at_us": 0},
        {"tenant": "b", "strategy": "stock", "at_us": 250,
         "scale": 0.0625}
      ]
    })";
    Result<service::WorkloadTrace> trace =
        service::WorkloadTrace::parse(text);
    ASSERT_TRUE(trace.isOk()) << trace.status().toString();
    ASSERT_EQ(trace->tenants.size(), 2u);
    EXPECT_EQ(trace->tenants[0].first, "a");
    EXPECT_EQ(trace->tenants[0].second.weight, 4u);
    EXPECT_EQ(trace->tenants[0].second.max_queued, 8u);
    EXPECT_EQ(trace->tenants[0].second.cache_share_bytes, 1048576u);
    EXPECT_EQ(trace->tenants[1].second.weight, 1u);
    ASSERT_EQ(trace->events.size(), 2u);
    EXPECT_EQ(trace->events[0].strategy,
              core::StrategyKind::kSeveriFastBz);
    EXPECT_DOUBLE_EQ(trace->events[0].scale, 0.03125);
    EXPECT_EQ(trace->events[1].strategy,
              core::StrategyKind::kStockFirecracker);
    EXPECT_EQ(trace->events[1].at_us, 250u);
    EXPECT_DOUBLE_EQ(trace->events[1].scale, 0.0625);
}

TEST(TraceParseTest, RejectsMalformedTraces)
{
    const char *bad[] = {
        "[]",
        R"({"tenants": [], "events": []})",
        R"({"tenants": [{"id": "a"}], "events": []})",
        R"({"tenants": [{"id": "a"}, {"id": "a"}],
            "events": [{"tenant": "a", "strategy": "severifast",
                        "at_us": 0}]})",
        R"({"tenants": [{"id": "a"}],
            "events": [{"tenant": "ghost", "strategy": "severifast",
                        "at_us": 0}]})",
        R"({"tenants": [{"id": "a"}],
            "events": [{"tenant": "a", "strategy": "warp9",
                        "at_us": 0}]})",
        R"({"tenants": [{"id": "a"}],
            "events": [{"tenant": "a", "strategy": "severifast"}]})",
        R"({"tenants": [{"id": "a", "weight": 0}],
            "events": [{"tenant": "a", "strategy": "severifast",
                        "at_us": 0}]})",
        R"({"tenants": [{"id": "a"}],
            "events": [{"tenant": "a", "strategy": "severifast",
                        "at_us": 0, "scale": 2.0}]})",
    };
    for (const char *text : bad) {
        Result<service::WorkloadTrace> trace =
            service::WorkloadTrace::parse(text);
        EXPECT_FALSE(trace.isOk()) << text;
    }
}

// ===================================================================
// Replay
// ===================================================================

TEST(TraceReplayTest, ReplayReportsPerTenantOutcomes)
{
    const char *text = R"({
      "defaults": {"scale": 0.03125},
      "tenants": [
        {"id": "heavy", "weight": 1},
        {"id": "light", "weight": 4}
      ],
      "events": [
        {"tenant": "heavy", "strategy": "severifast", "at_us": 0},
        {"tenant": "heavy", "strategy": "severifast", "at_us": 0},
        {"tenant": "heavy", "strategy": "severifast", "at_us": 0},
        {"tenant": "heavy", "strategy": "severifast", "at_us": 0},
        {"tenant": "light", "strategy": "severifast", "at_us": 10},
        {"tenant": "light", "strategy": "severifast", "at_us": 20}
      ]
    })";
    Result<service::WorkloadTrace> trace =
        service::WorkloadTrace::parse(text);
    ASSERT_TRUE(trace.isOk()) << trace.status().toString();

    core::Platform platform(sim::CostParams::deterministic());
    service::TenantRegistry registry;
    service::ServiceConfig config;
    config.workers = 2;
    service::LaunchService svc(platform, registry, config);

    // time_scale 0: submit back-to-back, preserving trace order.
    Result<service::ReplayReport> report =
        service::replayTrace(svc, *trace, /*time_scale=*/0.0);
    ASSERT_TRUE(report.isOk()) << report.status().toString();

    ASSERT_EQ(report->tenants.size(), 2u);
    u64 total_completed = 0;
    u64 total_warm = 0;
    for (const service::TenantReport &t : report->tenants) {
        EXPECT_EQ(t.completed, t.submitted) << t.tenant;
        EXPECT_EQ(t.rejected, 0u) << t.tenant;
        EXPECT_EQ(t.failed, 0u) << t.tenant;
        EXPECT_GE(t.p95_ns, t.p50_ns) << t.tenant;
        EXPECT_GE(t.max_ns, t.p95_ns) << t.tenant;
        total_completed += t.completed;
        total_warm += t.warm_hits;
    }
    EXPECT_EQ(total_completed, 6u);
    EXPECT_EQ(total_warm, 5u)
        << "identical requests collapse into one cold build";
    EXPECT_GT(report->latency_fairness, 0.0);
    EXPECT_LE(report->latency_fairness, 1.0 + 1e-9);

    // The JSON rendering round-trips through the repo's own parser.
    Result<stats::JsonValue> parsed =
        stats::parseJson(service::reportToJson(*report));
    ASSERT_TRUE(parsed.isOk()) << parsed.status().toString();
    EXPECT_EQ(parsed->find("tenants")->asArray().size(), 2u);
}

TEST(TraceReplayTest, RejectsBadTimeScale)
{
    core::Platform platform(sim::CostParams::deterministic());
    service::TenantRegistry registry;
    service::LaunchService svc(platform, registry);
    service::WorkloadTrace trace;
    Result<service::ReplayReport> report =
        service::replayTrace(svc, trace, -1.0);
    EXPECT_FALSE(report.isOk());
    EXPECT_EQ(report.status().code(), ErrorCode::kInvalidArgument);
}

} // namespace
} // namespace sevf
