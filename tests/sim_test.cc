/**
 * @file
 * Tests for the simulation core: virtual time, traces, cost model, and
 * the PSP-FIFO discrete-event replay that underpins Fig 12.
 */
#include <gtest/gtest.h>

#include "sim/cost_model.h"
#include "sim/des.h"
#include "sim/time.h"
#include "sim/trace.h"

namespace sevf::sim {
namespace {

// ---------------------------------------------------------------- time

TEST(Duration, Arithmetic)
{
    Duration a = Duration::millis(3);
    Duration b = Duration::micros(500);
    EXPECT_EQ((a + b).ns(), 3500000);
    EXPECT_EQ((a - b).ns(), 2500000);
    EXPECT_LT(b, a);
    EXPECT_EQ(maxTime(a, b), a);
}

TEST(Duration, Conversions)
{
    EXPECT_DOUBLE_EQ(Duration::millis(250).toMsF(), 250.0);
    EXPECT_DOUBLE_EQ(Duration::seconds(2).toSecF(), 2.0);
    EXPECT_EQ(Duration::fromMsF(1.5).ns(), 1500000);
}

TEST(Duration, Formatting)
{
    EXPECT_EQ(Duration::nanos(12).toString(), "12ns");
    EXPECT_EQ(Duration::micros(15).toString(), "15.00us");
    EXPECT_EQ(Duration::millis(250).toString(), "250.00ms");
    EXPECT_EQ(Duration::seconds(3).toString(), "3.00s");
}

TEST(Duration, NegativeFormatting)
{
    EXPECT_EQ((Duration::millis(1) - Duration::millis(3)).toString(),
              "-2.00ms");
    EXPECT_EQ(Duration::nanos(-5).toString(), "-5ns");
}

TEST(JitterTrace, DeterministicPerSeedAndPreservesShape)
{
    CostModel model{CostParams::calibrated()};
    BootTrace nominal;
    nominal.add(StepKind::kCpu, Duration::millis(10), phase::kVmm, "a");
    nominal.add(StepKind::kPsp, Duration::millis(5), phase::kPreEncryption,
                "b");

    Rng r1(9), r2(9), r3(10);
    BootTrace j1 = jitterTrace(nominal, model, r1);
    BootTrace j2 = jitterTrace(nominal, model, r2);
    BootTrace j3 = jitterTrace(nominal, model, r3);
    EXPECT_EQ(j1.total(), j2.total());
    EXPECT_NE(j1.total(), j3.total());
    // Steps keep kind/phase/label; only durations move.
    ASSERT_EQ(j1.steps().size(), 2u);
    EXPECT_EQ(j1.steps()[1].kind, StepKind::kPsp);
    EXPECT_EQ(j1.steps()[1].phase, phase::kPreEncryption);
    EXPECT_EQ(j1.steps()[1].label, "b");
}

// ---------------------------------------------------------------- trace

TEST(BootTrace, TotalsAndPhases)
{
    BootTrace t;
    t.add(StepKind::kCpu, Duration::millis(10), phase::kVmm, "start");
    t.add(StepKind::kPsp, Duration::millis(5), phase::kPreEncryption, "upd");
    t.add(StepKind::kCpu, Duration::millis(20), phase::kLinuxBoot, "boot");
    t.add(StepKind::kCpu, Duration::millis(2), phase::kVmm, "more");

    EXPECT_EQ(t.total(), Duration::millis(37));
    EXPECT_EQ(t.phaseTotal(phase::kVmm), Duration::millis(12));
    EXPECT_EQ(t.phaseTotal(phase::kPreEncryption), Duration::millis(5));
    EXPECT_EQ(t.phaseTotal("nonexistent"), Duration::zero());

    std::vector<std::string> phases = t.phases();
    ASSERT_EQ(phases.size(), 3u);
    EXPECT_EQ(phases[0], phase::kVmm);
    EXPECT_EQ(phases[1], phase::kPreEncryption);
}

// ------------------------------------------------------------ cost model

class CostModelTest : public ::testing::Test
{
  protected:
    CostModelTest() : model_(CostParams::deterministic()) {}
    CostModel model_;
};

TEST_F(CostModelTest, PreEncryptionIsLinearInSize)
{
    // Fig 4: pre-encryption time grows linearly with size.
    Duration d1 = model_.pspLaunchUpdate(1 * kMiB);
    Duration d2 = model_.pspLaunchUpdate(2 * kMiB);
    Duration d4 = model_.pspLaunchUpdate(4 * kMiB);
    double slope1 = (d2 - d1).toMsF();
    double slope2 = (d4 - d2).toMsF() / 2.0;
    EXPECT_NEAR(slope1, slope2, 1e-6);
    EXPECT_NEAR(slope1, model_.params().psp_launch_update_per_mib_ms, 1e-6);
}

TEST_F(CostModelTest, PreEncryptionCalibrationPoints)
{
    // §3.2: 23 MiB Lupine vmlinux => ~5.65 s.
    EXPECT_NEAR(model_.pspLaunchUpdate(23 * kMiB).toSecF(), 5.65, 0.15);
    // §3.2: 12 MiB compressed initrd => ~2.85 s.
    EXPECT_NEAR(model_.pspLaunchUpdate(12 * kMiB).toSecF(), 2.85, 0.15);
    // §3.2: 3.3 MiB Lupine bzImage => ~840 ms.
    EXPECT_NEAR(model_.pspLaunchUpdate(static_cast<u64>(3.3 * kMiB)).toMsF(),
                840.0, 40.0);
    // §3.1: 1 MiB OVMF => ~256.65 ms (within a few percent; the paper's
    // OVMF point also includes command framing we charge elsewhere).
    EXPECT_NEAR(model_.pspLaunchUpdate(1 * kMiB).toMsF(), 256.65, 15.0);
}

TEST_F(CostModelTest, PvalidateHugepagesVsBasePages)
{
    // §6.1: 256 MiB guest: >60 ms with 4K pages, <1 ms with hugepages.
    Duration base = model_.pvalidate(256 * kMiB, /*hugepages=*/false);
    Duration huge = model_.pvalidate(256 * kMiB, /*hugepages=*/true);
    EXPECT_GT(base.toMsF(), 55.0);
    EXPECT_LT(huge.toMsF(), 1.0);
}

TEST_F(CostModelTest, BootVerificationThroughput)
{
    // Fig 10 fit: copy+hash ~= 1.08 ms/MiB.
    Duration per_mib = model_.cpuCopy(kMiB) + model_.cpuSha256(kMiB);
    EXPECT_NEAR(per_mib.toMsF(), 1.08, 0.05);
}

TEST_F(CostModelTest, SnpLinuxBootMultiplier)
{
    Duration base = Duration::millis(52);
    Duration snp = model_.linuxBoot(base, /*snp=*/true);
    Duration plain = model_.linuxBoot(base, /*snp=*/false);
    EXPECT_EQ(plain, base);
    EXPECT_NEAR(snp.toMsF(),
                52.0 * model_.params().snp_linux_boot_multiplier +
                    model_.params().snp_guest_fixed_ms,
                1e-6);
}

TEST_F(CostModelTest, JitterDisabledIsIdentity)
{
    Rng rng(3);
    Duration d = Duration::millis(100);
    EXPECT_EQ(model_.jittered(d, &rng), d);
    CostModel with_jitter{CostParams::calibrated()};
    EXPECT_EQ(with_jitter.jittered(d, nullptr), d);
}

TEST_F(CostModelTest, JitterBoundedAndUnbiased)
{
    CostModel m{CostParams::calibrated()};
    Rng rng(4);
    Duration d = Duration::millis(100);
    double sum = 0.0;
    for (int i = 0; i < 5000; ++i) {
        Duration j = m.jittered(d, &rng);
        EXPECT_GE(j.toMsF(), 50.0);
        EXPECT_LE(j.toMsF(), 150.0);
        sum += j.toMsF();
    }
    EXPECT_NEAR(sum / 5000.0, 100.0, 1.0);
}

// ---------------------------------------------------------------- DES

BootTrace
makeTrace(i64 cpu_ms_before, i64 psp_ms, i64 cpu_ms_after)
{
    BootTrace t;
    if (cpu_ms_before > 0) {
        t.add(StepKind::kCpu, Duration::millis(cpu_ms_before), phase::kVmm,
              "cpu-pre");
    }
    if (psp_ms > 0) {
        t.add(StepKind::kPsp, Duration::millis(psp_ms),
              phase::kPreEncryption, "psp");
    }
    if (cpu_ms_after > 0) {
        t.add(StepKind::kCpu, Duration::millis(cpu_ms_after),
              phase::kLinuxBoot, "cpu-post");
    }
    return t;
}

TEST(Des, SingleVmIsSumOfSteps)
{
    ReplayResult r = replayConcurrent({makeTrace(10, 5, 20)});
    ASSERT_EQ(r.completion.size(), 1u);
    EXPECT_EQ(r.completion[0], Duration::millis(35));
    EXPECT_EQ(r.psp_wait[0], Duration::zero());
}

TEST(Des, CpuOnlyVmsDoNotQueue)
{
    // Non-SEV boots have no PSP steps: concurrency is free (Fig 12 flat).
    std::vector<BootTrace> traces(50, makeTrace(10, 0, 20));
    ReplayResult r = replayConcurrent(traces);
    for (Duration d : r.completion) {
        EXPECT_EQ(d, Duration::millis(30));
    }
}

TEST(Des, PspSerializesAcrossVms)
{
    // Two VMs hit the PSP at the same instant: the second waits.
    std::vector<BootTrace> traces(2, makeTrace(10, 5, 0));
    ReplayResult r = replayConcurrent(traces);
    std::vector<Duration> sorted = r.completion;
    std::sort(sorted.begin(), sorted.end());
    EXPECT_EQ(sorted[0], Duration::millis(15));
    EXPECT_EQ(sorted[1], Duration::millis(20));
}

TEST(Des, AverageGrowsLinearlyWithConcurrency)
{
    // The Fig 12 shape: mean completion is affine in N with slope
    // ~ psp_time/2.
    auto mean_for = [](int n) {
        std::vector<BootTrace> traces(n, makeTrace(10, 8, 30));
        return replayConcurrent(traces).meanCompletion().toMsF();
    };
    double m1 = mean_for(1);
    double m10 = mean_for(10);
    double m50 = mean_for(50);
    double slope_a = (m10 - m1) / 9.0;
    double slope_b = (m50 - m10) / 40.0;
    EXPECT_NEAR(slope_a, 4.0, 0.5); // psp 8 ms => slope 4 ms/VM
    EXPECT_NEAR(slope_b, 4.0, 0.5);
}

TEST(Des, FifoOrderRespectsArrival)
{
    // VM0 reaches the PSP at t=1, VM1 at t=0: VM1 must be served first.
    std::vector<BootTrace> traces;
    traces.push_back(makeTrace(1, 10, 0));
    traces.push_back(makeTrace(0, 10, 0));
    ReplayResult r = replayConcurrent(traces);
    EXPECT_EQ(r.completion[1], Duration::millis(10));
    EXPECT_EQ(r.completion[0], Duration::millis(20));
    EXPECT_EQ(r.psp_wait[0], Duration::millis(9));
}

TEST(Des, StaggeredStartsShiftCompletion)
{
    std::vector<BootTrace> traces(2, makeTrace(10, 0, 0));
    ReplayResult r =
        replayConcurrent(traces, Duration::millis(100).ns());
    EXPECT_EQ(r.completion[0], Duration::millis(10));
    EXPECT_EQ(r.completion[1], Duration::millis(110));
}

TEST(Des, MultiplePspVisitsPerVm)
{
    // Each VM visits the PSP twice (launch + report); serialization
    // applies to both visits.
    BootTrace t;
    t.add(StepKind::kPsp, Duration::millis(5), phase::kPreEncryption, "a");
    t.add(StepKind::kCpu, Duration::millis(10), phase::kLinuxBoot, "b");
    t.add(StepKind::kPsp, Duration::millis(5), phase::kAttestation, "c");
    std::vector<BootTrace> traces(3, t);
    ReplayResult r = replayConcurrent(traces);
    // Total PSP demand is 30 ms; the last completion cannot beat that.
    EXPECT_GE(r.maxCompletion(), Duration::millis(30));
}

TEST(Des, MeanAndMaxHelpers)
{
    std::vector<BootTrace> traces;
    traces.push_back(makeTrace(10, 0, 0));
    traces.push_back(makeTrace(30, 0, 0));
    ReplayResult r = replayConcurrent(traces);
    EXPECT_EQ(r.meanCompletion(), Duration::millis(20));
    EXPECT_EQ(r.maxCompletion(), Duration::millis(30));
}

} // namespace
} // namespace sevf::sim
