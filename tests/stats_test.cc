/**
 * @file
 * Stats module tests: summaries, percentiles, CDFs, table rendering.
 */
#include <gtest/gtest.h>

#include "stats/ascii_chart.h"
#include "stats/json.h"
#include "stats/summary.h"
#include "stats/table.h"

namespace sevf::stats {
namespace {

std::vector<sim::Duration>
ms(std::initializer_list<int> values)
{
    std::vector<sim::Duration> out;
    for (int v : values) {
        out.push_back(sim::Duration::millis(v));
    }
    return out;
}

TEST(Summary, BasicMoments)
{
    Summary s = summarize(ms({10, 20, 30, 40}));
    EXPECT_EQ(s.count, 4u);
    EXPECT_DOUBLE_EQ(s.mean_ms, 25.0);
    EXPECT_DOUBLE_EQ(s.min_ms, 10.0);
    EXPECT_DOUBLE_EQ(s.max_ms, 40.0);
    EXPECT_NEAR(s.stddev_ms, 11.18, 0.01);
}

TEST(Summary, EmptyIsZero)
{
    Summary s = summarize({});
    EXPECT_EQ(s.count, 0u);
    EXPECT_EQ(s.mean_ms, 0.0);
}

TEST(Percentile, InterpolatesBetweenOrderStats)
{
    std::vector<sim::Duration> samples = ms({10, 20, 30, 40, 50});
    EXPECT_DOUBLE_EQ(percentileMs(samples, 0), 10.0);
    EXPECT_DOUBLE_EQ(percentileMs(samples, 50), 30.0);
    EXPECT_DOUBLE_EQ(percentileMs(samples, 100), 50.0);
    EXPECT_DOUBLE_EQ(percentileMs(samples, 25), 20.0);
    EXPECT_DOUBLE_EQ(percentileMs(samples, 90), 46.0);
}

TEST(Cdf, MonotoneAndComplete)
{
    std::vector<CdfPoint> cdf = cdfOf(ms({30, 10, 20}));
    ASSERT_EQ(cdf.size(), 3u);
    EXPECT_DOUBLE_EQ(cdf[0].value_ms, 10.0);
    EXPECT_NEAR(cdf[0].fraction, 1.0 / 3.0, 1e-9);
    EXPECT_DOUBLE_EQ(cdf[2].value_ms, 30.0);
    EXPECT_DOUBLE_EQ(cdf[2].fraction, 1.0);
}

TEST(TableTest, RendersAlignedColumns)
{
    Table t({"name", "time"});
    t.addRow({"lupine", "20.36ms"});
    t.addRow({"ubuntu-long-name", "32.96ms"});
    std::string out = t.render();
    EXPECT_NE(out.find("name"), std::string::npos);
    EXPECT_NE(out.find("ubuntu-long-name  32.96ms"), std::string::npos);
    EXPECT_NE(out.find("----"), std::string::npos);
}

TEST(Formatters, Render)
{
    EXPECT_EQ(fmtMs(12.345), "12.35ms");
    EXPECT_EQ(fmtMs(12.345, 0), "12ms");
    EXPECT_EQ(fmtBytes(13.0 * 1024), "13.0K");
    EXPECT_EQ(fmtBytes(3.3 * 1024 * 1024), "3.3M");
    EXPECT_EQ(fmtBytes(304), "304B");
    EXPECT_EQ(fmtPercent(0.938), "93.8%");
}

TEST(AsciiChartTest, RendersSeriesAndAxes)
{
    AsciiChart chart(40, 8);
    chart.addSeries("up", '#', {{0, 0}, {10, 100}});
    chart.addSeries("flat", '.', {{0, 50}, {10, 50}});
    std::string out = chart.render("x-things", "y-things");
    EXPECT_NE(out.find('#'), std::string::npos);
    EXPECT_NE(out.find('.'), std::string::npos);
    EXPECT_NE(out.find("x: x-things"), std::string::npos);
    EXPECT_NE(out.find("# = up"), std::string::npos);
    EXPECT_NE(out.find(". = flat"), std::string::npos);
    // y-axis labels include the data extremes.
    EXPECT_NE(out.find("100"), std::string::npos);
    EXPECT_NE(out.find("0 |"), std::string::npos);
}

TEST(AsciiChartTest, FixedBoundsClipOutOfRangePoints)
{
    AsciiChart chart(20, 5);
    chart.setXBounds(0, 10);
    chart.setYBounds(0, 10);
    chart.addSeries("s", '*', {{5, 5}, {50, 50}}); // second point clipped
    std::string out = chart.render("x", "y");
    EXPECT_NE(out.find('*'), std::string::npos);
}

TEST(AsciiChartTest, MonotoneSeriesRendersMonotone)
{
    // The '#' in each row must move right as rows go down->up.
    AsciiChart chart(30, 6);
    chart.addSeries("line", '#',
                    {{0, 0}, {1, 1}, {2, 2}, {3, 3}, {4, 4}, {5, 5}});
    std::string out = chart.render("x", "y");
    std::vector<int> first_col;
    std::size_t pos = 0;
    while ((pos = out.find('\n', pos)) != std::string::npos) {
        ++pos;
        std::size_t end = out.find('\n', pos);
        if (end == std::string::npos) {
            break;
        }
        std::string line = out.substr(pos, end - pos);
        std::size_t hash = line.find('#');
        if (hash != std::string::npos) {
            first_col.push_back(static_cast<int>(hash));
        }
    }
    for (std::size_t i = 1; i < first_col.size(); ++i) {
        EXPECT_LE(first_col[i], first_col[i - 1])
            << "rows lower on screen hold smaller y => smaller x";
    }
}

TEST(Json, ObjectsArraysAndEscaping)
{
    JsonWriter w;
    w.beginObject();
    w.key("name").value("line\n\"quoted\"");
    w.key("count").value(u64{42});
    w.key("ratio").value(0.5);
    w.key("ok").value(true);
    w.key("items").beginArray();
    w.value(u64{1}).value(u64{2});
    w.beginObject().key("x").value(i64{-3}).endObject();
    w.endArray();
    w.endObject();
    std::string out = w.take();
    EXPECT_EQ(out,
              "{\"name\":\"line\\n\\\"quoted\\\"\","
              "\"count\":42,\"ratio\":0.5,\"ok\":true,"
              "\"items\":[1,2,{\"x\":-3}]}");
}

TEST(Json, EmptyContainers)
{
    JsonWriter w;
    w.beginObject();
    w.key("empty_array").beginArray().endArray();
    w.key("empty_object").beginObject().endObject();
    w.endObject();
    EXPECT_EQ(w.take(), "{\"empty_array\":[],\"empty_object\":{}}");
}

} // namespace
} // namespace sevf::stats
