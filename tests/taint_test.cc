/**
 * @file
 * Secret-flow taint tests: label algebra, RAII scoping, propagation
 * through guest memory and the crypto engines, every host-visible sink
 * (including deliberately leaky flows that must be caught with an
 * actionable diagnostic), declassification, enforce-mode panics, and
 * all five boot strategies running clean under full enforcement.
 */
#include <gtest/gtest.h>

#include "attest/guest_owner.h"
#include "core/launch.h"
#include "guest/attestation_client.h"
#include "memory/guest_memory.h"
#include "psp/key_server.h"
#include "psp/psp.h"
#include "sim/trace.h"
#include "taint/taint.h"
#include "vmm/debug_port.h"
#include "vmm/fw_cfg.h"

namespace sevf {
namespace {

/** Claim+validate a GPA range for private (C-bit) guest access. */
void
claim(memory::GuestMemory &mem, Gpa gpa, u64 len)
{
    for (Gpa p = alignDown(gpa, kPageSize); p < gpa + len; p += kPageSize) {
        ASSERT_TRUE(
            mem.rmp().rmpUpdate(mem.spaOf(p), mem.asid(), p, true).isOk());
        ASSERT_TRUE(
            mem.rmp().pvalidate(mem.spaOf(p), mem.asid(), p, true).isOk());
    }
}

class TaintTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        taint::clearViolations();
        taint::setMode(taint::Mode::kRecord);
    }
};

TEST_F(TaintTest, MarkQueryClearRange)
{
    ByteVec buf(64, 0);
    EXPECT_EQ(taint::query(buf.data(), buf.size()), taint::kNone);

    taint::mark(buf.data() + 16, 16, taint::kVek);
    EXPECT_EQ(taint::query(buf.data(), buf.size()), taint::kVek);
    EXPECT_EQ(taint::query(buf.data(), 16), taint::kNone);
    EXPECT_EQ(taint::query(buf.data() + 32, 32), taint::kNone);
    EXPECT_EQ(taint::query(buf.data() + 20, 4), taint::kVek);

    // Labels join, never overwrite.
    taint::mark(buf.data() + 20, 8, taint::kLaunchSecret);
    EXPECT_EQ(taint::query(buf.data() + 20, 4),
              taint::kVek | taint::kLaunchSecret);

    // Clearing a subrange splits the segment.
    taint::clearRange(buf.data() + 20, 8);
    EXPECT_EQ(taint::query(buf.data() + 20, 8), taint::kNone);
    EXPECT_EQ(taint::query(buf.data() + 16, 4), taint::kVek);
    EXPECT_EQ(taint::query(buf.data() + 28, 4), taint::kVek);

    taint::clearRange(buf.data(), buf.size());
    EXPECT_EQ(taint::query(buf.data(), buf.size()), taint::kNone);
}

TEST_F(TaintTest, ScopedTaintClearsOnExit)
{
    ByteVec buf(32, 0);
    {
        taint::ScopedTaint guard(buf.data(), buf.size(),
                                 taint::kTransportKey);
        EXPECT_EQ(taint::query(buf.data(), buf.size()),
                  taint::kTransportKey);
    }
    EXPECT_EQ(taint::query(buf.data(), buf.size()), taint::kNone);
}

TEST_F(TaintTest, ScopedLabelSetAndReset)
{
    ByteVec buf(32, 0);
    taint::ScopedLabel label;
    label.set(buf.data(), buf.size(), taint::kChipKey);
    EXPECT_EQ(taint::query(buf.data(), buf.size()), taint::kChipKey);
    label.reset();
    EXPECT_EQ(taint::query(buf.data(), buf.size()), taint::kNone);
}

TEST_F(TaintTest, DescribeLabels)
{
    EXPECT_EQ(taint::describeLabels(taint::kNone), "public");
    EXPECT_EQ(taint::describeLabels(taint::kVek | taint::kLaunchSecret),
              "vek|launch-secret");
}

TEST_F(TaintTest, DeclassifyClearsAndAudits)
{
    u64 before = taint::declassificationCount();
    ByteVec buf(16, 0);
    taint::mark(buf.data(), buf.size(), taint::kLaunchSecret);
    taint::declassify(buf.data(), buf.size(),
                      "test: reviewed release of a fingerprint");
    EXPECT_EQ(taint::query(buf.data(), buf.size()), taint::kNone);
    EXPECT_GT(taint::declassificationCount(), before);
}

// ---- Sink coverage: every leaky flow is caught in record mode ----------

TEST_F(TaintTest, HostWriteSinkCatchesLeak)
{
    memory::GuestMemory mem(4 * kPageSize, 0, /*asid=*/1);
    ByteVec secret(32, 0xaa);
    taint::ScopedTaint guard(secret.data(), secret.size(),
                             taint::kLaunchSecret);
    ASSERT_TRUE(mem.hostWrite(0, secret).isOk());
    ASSERT_EQ(taint::violationCount(), 1u);
    taint::Violation v = taint::violations().front();
    EXPECT_EQ(v.sink, taint::Sink::kHostWrite);
    EXPECT_EQ(v.labels, taint::kLaunchSecret);
    // The diagnostic tells the reader what leaked, where, and what to
    // do about an intentional flow.
    EXPECT_NE(v.message.find("launch-secret"), std::string::npos);
    EXPECT_NE(v.message.find("host-write"), std::string::npos);
    EXPECT_NE(v.message.find("declassify"), std::string::npos);
}

TEST_F(TaintTest, SharedPageWriteSinkCatchesLeak)
{
    psp::KeyServer kds;
    psp::Psp psp("taint-chip", kds, 11);
    memory::GuestMemory mem(4 * kPageSize, 0, psp.allocateAsid());
    ASSERT_TRUE(psp.launchStart(mem, 0).isOk());

    ByteVec secret(16, 0xbb);
    taint::ScopedTaint guard(secret.data(), secret.size(), taint::kVek);
    // C-bit clear: plaintext through a shared mapping.
    ASSERT_TRUE(mem.guestWrite(0, secret, /*c_bit=*/false).isOk());
    ASSERT_EQ(taint::violationCount(), 1u);
    EXPECT_EQ(taint::violations().front().sink,
              taint::Sink::kSharedPageWrite);
}

TEST_F(TaintTest, FwCfgSinkCatchesLeak)
{
    memory::GuestMemory mem(16 * kPageSize, 0, /*asid=*/0,
                            memory::SevMode::kNone);
    vmm::FwCfg fw_cfg(mem, 0, 8 * kPageSize);
    ByteVec secret(64, 0xcc);
    taint::ScopedTaint guard(secret.data(), secret.size(),
                             taint::kLaunchSecret);
    ASSERT_TRUE(fw_cfg.addItem("kernel/leak", secret).isOk());
    ASSERT_GE(taint::violationCount(), 1u);
    EXPECT_EQ(taint::violations().front().sink, taint::Sink::kFwCfg);
    EXPECT_NE(taint::violations().front().message.find("kernel/leak"),
              std::string::npos);
}

TEST_F(TaintTest, DebugPortRedactsSecretPayload)
{
    vmm::DebugPort port;
    ByteVec payload(8, 0x5a);

    port.recordData(sim::TimePoint{}, "public marker", payload);
    ASSERT_EQ(port.events().size(), 1u);
    EXPECT_NE(port.events()[0].label.find("5a5a"), std::string::npos);
    EXPECT_EQ(taint::violationCount(), 0u);

    taint::ScopedTaint guard(payload.data(), payload.size(),
                             taint::kTransportKey);
    port.recordData(sim::TimePoint{}, "leaky marker", payload);
    ASSERT_EQ(port.events().size(), 2u);
    // The event survives but the bytes do not.
    EXPECT_NE(port.events()[1].label.find("<redacted"), std::string::npos);
    EXPECT_EQ(port.events()[1].label.find("5a5a"), std::string::npos);
    ASSERT_EQ(taint::violationCount(), 1u);
    EXPECT_EQ(taint::violations().front().sink, taint::Sink::kDebugPort);
}

TEST_F(TaintTest, TraceAnnotationRedactsSecretPayload)
{
    sim::BootTrace trace;
    ByteVec payload(4, 0x77);
    trace.addAnnotated(sim::StepKind::kCpu, sim::Duration::zero(),
                       sim::phase::kVmm, "clean step", payload);
    ASSERT_EQ(trace.steps().size(), 1u);
    EXPECT_EQ(trace.steps()[0].annotation, "77777777");

    taint::ScopedTaint guard(payload.data(), payload.size(),
                             taint::kGuestData);
    trace.addAnnotated(sim::StepKind::kCpu, sim::Duration::zero(),
                       sim::phase::kVmm, "leaky step", payload);
    ASSERT_EQ(trace.steps().size(), 2u);
    EXPECT_NE(trace.steps()[1].annotation.find("<redacted"),
              std::string::npos);
    ASSERT_EQ(taint::violationCount(), 1u);
    EXPECT_EQ(taint::violations().front().sink,
              taint::Sink::kTraceAnnotation);
}

TEST_F(TaintTest, ReportFieldSinkCatchesLeak)
{
    psp::KeyServer kds;
    psp::Psp psp("taint-chip-2", kds, 13);
    memory::GuestMemory mem(4 * kPageSize, 0, psp.allocateAsid());
    Result<psp::GuestHandle> handle = psp.launchStart(mem, 0);
    ASSERT_TRUE(handle.isOk());
    ASSERT_TRUE(mem.hostWrite(0, ByteVec(kPageSize, 1)).isOk());
    ASSERT_TRUE(psp.launchUpdateData(*handle, mem, 0, kPageSize).isOk());
    ASSERT_TRUE(psp.launchFinish(*handle).isOk());

    psp::ReportData rdata{};
    taint::ScopedTaint guard(rdata.data(), rdata.size(),
                             taint::kLaunchSecret);
    ASSERT_TRUE(psp.guestRequestReport(*handle, rdata).isOk());
    ASSERT_GE(taint::violationCount(), 1u);
    bool report_field_hit = false;
    for (const taint::Violation &v : taint::violations()) {
        report_field_hit |= v.sink == taint::Sink::kReportField;
    }
    EXPECT_TRUE(report_field_hit);
}

// ---- Propagation through the stack -------------------------------------

TEST_F(TaintTest, EncryptionDeclassifiesBuffers)
{
    crypto::Aes128Key key{}, tweak{};
    key[0] = 1;
    tweak[0] = 2;
    crypto::XexCipher cipher(key, tweak);
    ByteVec data(32, 0xee);
    taint::mark(data.data(), data.size(), taint::kLaunchSecret);
    cipher.encrypt(data, /*spa=*/0);
    // Ciphertext is public by cryptographic assumption.
    EXPECT_EQ(taint::query(data.data(), data.size()), taint::kNone);
}

TEST_F(TaintTest, PageLabelsCarrySecretsThroughGuestMemory)
{
    psp::KeyServer kds;
    psp::Psp psp("taint-chip-3", kds, 17);
    memory::GuestMemory mem(8 * kPageSize, 0, psp.allocateAsid());
    Result<psp::GuestHandle> handle = psp.launchStart(mem, 0);
    ASSERT_TRUE(handle.isOk());
    ASSERT_TRUE(mem.hostWrite(0, ByteVec(kPageSize, 3)).isOk());
    ASSERT_TRUE(psp.launchUpdateData(*handle, mem, 0, kPageSize).isOk());

    // Pre-encrypted launch pages carry plain kGuestData: guestRead of
    // measured kernel content must NOT scatter secret labels around.
    EXPECT_EQ(mem.pageLabel(0), taint::kGuestData);
    Result<ByteVec> kernel = mem.guestRead(0, 64, /*c_bit=*/true);
    ASSERT_TRUE(kernel.isOk());
    EXPECT_EQ(taint::query(kernel->data(), kernel->size()), taint::kNone);

    // A guest write of labelled bytes moves the label into the page
    // shadow; reading it back re-labels the plaintext copy.
    Gpa secret_gpa = 4 * kPageSize;
    claim(mem, secret_gpa, kPageSize);
    {
        ByteVec secret(128, 0x42);
        taint::ScopedTaint guard(secret.data(), secret.size(),
                                 taint::kLaunchSecret);
        ASSERT_TRUE(mem.guestWrite(secret_gpa, secret, true).isOk());
    }
    EXPECT_NE(mem.pageLabel(secret_gpa) & taint::kLaunchSecret,
              taint::kNone);
    Result<ByteVec> back = mem.guestRead(secret_gpa, 128, true);
    ASSERT_TRUE(back.isOk());
    EXPECT_NE(taint::query(back->data(), back->size()) &
                  taint::kLaunchSecret,
              taint::kNone);
    taint::clearRange(back->data(), back->size());

    // The host sees only ciphertext, which carries no byte labels.
    Result<ByteVec> cipher = mem.hostRead(secret_gpa, 128);
    ASSERT_TRUE(cipher.isOk());
    EXPECT_EQ(taint::query(cipher->data(), cipher->size()), taint::kNone);
    EXPECT_EQ(taint::violationCount(), 0u);
}

TEST_F(TaintTest, AttestationFlowIsCleanAndLabelsProvisionedSecret)
{
    psp::KeyServer kds;
    psp::Psp psp("taint-chip-4", kds, 19);
    memory::GuestMemory mem(8 * kPageSize, 0, psp.allocateAsid());
    Result<psp::GuestHandle> handle = psp.launchStart(mem, 0);
    ASSERT_TRUE(handle.isOk());
    ASSERT_TRUE(mem.hostWrite(0, ByteVec(kPageSize, 7)).isOk());
    ASSERT_TRUE(psp.launchUpdateData(*handle, mem, 0, kPageSize).isOk());
    Result<crypto::Sha256Digest> measurement = psp.launchMeasure(*handle);
    ASSERT_TRUE(measurement.isOk());
    ASSERT_TRUE(psp.launchFinish(*handle).isOk());

    attest::GuestOwner owner(kds, *measurement, ByteVec(96, 0x51),
                             /*seed=*/23);
    Gpa secret_dest = 2 * kPageSize;
    claim(mem, secret_dest, kPageSize);
    taint::ScopedMode enforce(taint::Mode::kEnforce);
    Result<guest::AttestationOutcome> outcome = guest::runAttestation(
        psp, *handle, mem, secret_dest, owner, /*seed=*/29);
    ASSERT_TRUE(outcome.isOk()) << outcome.status().toString();

    // The provisioned secret's pages carry the launch-secret label end
    // to end, and the whole flow ran without tripping a single sink
    // under full enforcement.
    EXPECT_NE(mem.pageLabel(secret_dest) & taint::kLaunchSecret,
              taint::kNone);
}

// ---- Enforce mode ------------------------------------------------------

using TaintDeathTest = TaintTest;

TEST_F(TaintDeathTest, EnforceModePanicsOnLeak)
{
    ::testing::FLAGS_gtest_death_test_style = "threadsafe";
    memory::GuestMemory mem(4 * kPageSize, 0, /*asid=*/1);
    ByteVec secret(16, 0xdd);
    taint::ScopedTaint guard(secret.data(), secret.size(), taint::kVek);
    taint::ScopedMode enforce(taint::Mode::kEnforce);
    EXPECT_DEATH(
        { (void)mem.hostWrite(0, secret); },
        "SECRET bytes .*vek.* reached public sink 'host-write'");
}

// ---- Whole-stack enforcement -------------------------------------------

class TaintStrategyTest : public ::testing::TestWithParam<core::StrategyKind>
{
  protected:
    TaintStrategyTest() : platform_(sim::CostParams::deterministic()) {}
    core::Platform platform_;
};

TEST_P(TaintStrategyTest, BootsCleanUnderEnforcement)
{
    taint::clearViolations();
    taint::ScopedMode enforce(taint::Mode::kEnforce);
    core::LaunchRequest req;
    req.scale = 1.0 / 32.0;
    Result<core::LaunchResult> result =
        core::makeStrategy(GetParam())->launch(platform_, req);
    ASSERT_TRUE(result.isOk()) << result.status().toString();
    EXPECT_EQ(taint::violationCount(), 0u);
}

INSTANTIATE_TEST_SUITE_P(
    AllStrategies, TaintStrategyTest,
    ::testing::Values(core::StrategyKind::kStockFirecracker,
                      core::StrategyKind::kQemuOvmfSev,
                      core::StrategyKind::kSevDirectBoot,
                      core::StrategyKind::kSeveriFastBz,
                      core::StrategyKind::kSeveriFastVmlinux),
    [](const ::testing::TestParamInfo<core::StrategyKind> &info) {
        std::string name = core::strategyName(info.param);
        for (char &c : name) {
            if (c == '-') {
                c = '_';
            }
        }
        return name;
    });

} // namespace
} // namespace sevf
