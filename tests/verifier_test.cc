/**
 * @file
 * Boot-verifier tests: the full measured-direct-boot flow on real
 * artifacts (bzImage and streaming-vmlinux paths), plus the §2.6 host
 * attacks, all at small workload scale.
 */
#include <gtest/gtest.h>

#include "base/bytes.h"
#include "guest/bootstrap_loader.h"
#include "image/elf.h"
#include "psp/psp.h"
#include "verifier/boot_verifier.h"
#include "verifier/verifier_binary.h"
#include "vmm/fw_cfg.h"
#include "vmm/layout.h"
#include "vmm/microvm.h"
#include "workload/synthetic.h"

namespace sevf::verifier {
namespace {

namespace layout = vmm::layout;
constexpr double kScale = 1.0 / 32.0;

/** Full host-side SEV launch up to entering the guest. */
class SevLaunchFixture : public ::testing::Test
{
  protected:
    SevLaunchFixture()
        : psp_("CHIP-VERIF", ks_, 0xd00d),
          art_(workload::cachedKernelArtifacts(
              workload::KernelConfig::kLupine, kScale)),
          initrd_(workload::cachedInitrd(kScale))
    {
    }

    /**
     * Run the host-side launch flow with @p kernel_image and hashes
     * computed over @p hashed_kernel (normally the same bytes; tests
     * pass different ones to model attacks).
     */
    void
    launch(ByteSpan kernel_image, ByteSpan hashed_kernel,
           ByteSpan hashed_initrd, KernelImageKind kind)
    {
        vmm::VmConfig config;
        config.memory_size = 256 * kMiB;
        vm_ = std::make_unique<vmm::MicroVm>(config, 0x100000000ull,
                                             psp_.allocateAsid());

        // Stage plaintext components (Fig 2 step 3).
        if (kind == KernelImageKind::kBzImage) {
            staged_ = *vm_->stageMeasuredComponents(kernel_image, initrd_);
        } else {
            vmm::FwCfg fw(vm_->memory(), layout::kKernelStagingGpa,
                          64 * kMiB);
            ASSERT_TRUE(stageVmlinuxViaFwCfg(fw, kernel_image).isOk());
            ASSERT_TRUE(vm_->memory()
                            .hostWrite(layout::kInitrdStagingGpa, initrd_)
                            .isOk());
            staged_.kernel_gpa = layout::kKernelStagingGpa;
            staged_.kernel_size = kernel_image.size();
            staged_.initrd_gpa = layout::kInitrdStagingGpa;
            staged_.initrd_size = initrd_.size();
        }

        // Out-of-band hashes (§4.3).
        if (kind == KernelImageKind::kBzImage) {
            hashes_ = BootHashes::compute(hashed_kernel, hashed_initrd,
                                          std::nullopt);
        } else {
            hashes_.kernel = *vmlinuxStreamDigest(hashed_kernel);
            hashes_.kernel_size = hashed_kernel.size();
            hashes_.initrd = crypto::Sha256::digest(hashed_initrd);
            hashes_.initrd_size = hashed_initrd.size();
        }

        // Boot structures + pre-encryption plan.
        vmm::BootStructs structs =
            *vm_->stageBootStructs(layout::kInitrdPrivateGpa,
                                   initrd_.size(), 0);
        plan_ = *vm_->buildPreEncryptionPlan(verifierBinary(), hashes_,
                                             structs);

        // PSP launch flow.
        handle_ = *psp_.launchStart(vm_->memory(), config.sev_policy);
        for (const attest::PreEncryptedRegion &r : plan_) {
            ASSERT_TRUE(psp_
                            .launchUpdateData(handle_, vm_->memory(), r.gpa,
                                              r.bytes.size())
                            .isOk())
                << r.name;
        }
        ASSERT_TRUE(psp_.launchFinish(handle_).isOk());

        inputs_ = VerifierInputs{};
        inputs_.kernel_staging = staged_.kernel_gpa;
        inputs_.initrd_staging = staged_.initrd_gpa;
        inputs_.hash_table_gpa = layout::kHashTableGpa;
        inputs_.kernel_private = layout::kBzImagePrivateGpa;
        inputs_.initrd_private = layout::kInitrdPrivateGpa;
        inputs_.page_table_root = layout::kPageTableGpa;
        inputs_.kernel_kind = kind;
        inputs_.keep_shared = {
            {staged_.kernel_gpa, 80 * kMiB},
            {staged_.initrd_gpa, 32 * kMiB},
        };
    }

    psp::KeyServer ks_;
    psp::Psp psp_;
    const workload::KernelArtifacts &art_;
    const ByteVec &initrd_;
    std::unique_ptr<vmm::MicroVm> vm_;
    vmm::StagedComponents staged_;
    BootHashes hashes_;
    std::vector<attest::PreEncryptedRegion> plan_;
    psp::GuestHandle handle_ = 0;
    VerifierInputs inputs_;
};

TEST_F(SevLaunchFixture, BzImagePathVerifiesAndLoads)
{
    launch(art_.bzimage, art_.bzimage, initrd_, KernelImageKind::kBzImage);
    BootVerifier verifier(vm_->memory());
    Result<VerifiedBoot> boot = verifier.run(inputs_);
    ASSERT_TRUE(boot.isOk()) << boot.status().toString();
    EXPECT_EQ(boot->kernel_gpa, layout::kBzImagePrivateGpa);
    EXPECT_EQ(boot->kernel_size, art_.bzimage.size());
    // ~256 MiB of pages minus the shared staging windows.
    EXPECT_GT(boot->stats.pages_validated, 30000u);
    EXPECT_EQ(boot->stats.bytes_copied,
              art_.bzimage.size() + initrd_.size());

    // The protected bzImage is intact in encrypted memory...
    EXPECT_EQ(*vm_->memory().guestRead(boot->kernel_gpa, 64, true),
              ByteVec(art_.bzimage.begin(), art_.bzimage.begin() + 64));
    // ...and is ciphertext from the host's view.
    EXPECT_NE(*vm_->memory().hostRead(boot->kernel_gpa, 64),
              ByteVec(art_.bzimage.begin(), art_.bzimage.begin() + 64));

    // Bootstrap loader decompresses and places the real kernel.
    Result<guest::LoadedKernel> loaded = guest::runBootstrapLoader(
        vm_->memory(), boot->kernel_gpa, boot->kernel_size, true);
    ASSERT_TRUE(loaded.isOk()) << loaded.status().toString();
    EXPECT_EQ(loaded->entry, art_.entry);
    EXPECT_EQ(loaded->codec, compress::CodecKind::kLz4);
    EXPECT_EQ(loaded->decompressed_bytes, art_.vmlinux.size());

    // Kernel text is where it should run, decryptable only as guest.
    Result<image::ElfImage> elf = image::parseElf(art_.vmlinux);
    ASSERT_TRUE(elf.isOk());
    const image::ElfSegment &seg0 = elf->segments[0];
    EXPECT_EQ(*vm_->memory().guestRead(seg0.vaddr, 128, true),
              ByteVec(seg0.data.begin(), seg0.data.begin() + 128));
}

TEST_F(SevLaunchFixture, VmlinuxStreamingPathLoadsDirectly)
{
    launch(art_.vmlinux, art_.vmlinux, initrd_, KernelImageKind::kVmlinux);
    BootVerifier verifier(vm_->memory());
    Result<VerifiedBoot> boot = verifier.run(inputs_);
    ASSERT_TRUE(boot.isOk()) << boot.status().toString();
    EXPECT_EQ(boot->kernel_entry, art_.entry);

    // Segments already sit at their run addresses - no bootstrap loader.
    Result<image::ElfImage> elf = image::parseElf(art_.vmlinux);
    ASSERT_TRUE(elf.isOk());
    for (const image::ElfSegment &seg : elf->segments) {
        ByteVec head(seg.data.begin(),
                     seg.data.begin() +
                         std::min<std::size_t>(64, seg.data.size()));
        EXPECT_EQ(*vm_->memory().guestRead(seg.vaddr, head.size(), true),
                  head);
    }
    // Streaming copies strictly less than bzImage-path's copy of the
    // whole file plus later decompressed writes: assert it skipped the
    // ELF padding at least.
    EXPECT_LE(boot->stats.bytes_hashed,
              art_.vmlinux.size() + initrd_.size());
}

TEST_F(SevLaunchFixture, MeasurementMatchesExpectedTool)
{
    launch(art_.bzimage, art_.bzimage, initrd_, KernelImageKind::kBzImage);
    EXPECT_EQ(*psp_.launchMeasure(handle_),
              attest::expectedMeasurement(plan_));
}

TEST_F(SevLaunchFixture, Attack_SwappedKernelDetected)
{
    // Host stages a different kernel than the one hashed (§2.6 #1).
    ByteVec evil = art_.bzimage;
    evil[evil.size() / 2] ^= 0xff;
    launch(evil, art_.bzimage, initrd_, KernelImageKind::kBzImage);
    BootVerifier verifier(vm_->memory());
    Result<VerifiedBoot> boot = verifier.run(inputs_);
    ASSERT_FALSE(boot.isOk());
    EXPECT_EQ(boot.status().code(), ErrorCode::kIntegrityFailure);
}

TEST_F(SevLaunchFixture, Attack_SwappedInitrdDetected)
{
    ByteVec evil = initrd_;
    evil[100] ^= 0xff;
    launch(art_.bzimage, art_.bzimage, initrd_, KernelImageKind::kBzImage);
    // Re-stage the tampered initrd after hashing.
    ASSERT_TRUE(
        vm_->memory().hostWrite(layout::kInitrdStagingGpa, evil).isOk());
    BootVerifier verifier(vm_->memory());
    Result<VerifiedBoot> boot = verifier.run(inputs_);
    ASSERT_FALSE(boot.isOk());
    EXPECT_EQ(boot.status().code(), ErrorCode::kIntegrityFailure);
}

TEST_F(SevLaunchFixture, Attack_HashPageNotPreEncrypted)
{
    // Host "forgets" to measure the hash page: the verifier's C-bit
    // read faults (#VC) instead of trusting plaintext hashes.
    launch(art_.bzimage, art_.bzimage, initrd_, KernelImageKind::kBzImage);
    // Fresh VM where the hash page is staged but never LAUNCH_UPDATEd.
    vmm::VmConfig config;
    vmm::MicroVm vm2(config, 0x200000000ull, psp_.allocateAsid());
    ASSERT_TRUE(psp_.launchStart(vm2.memory(), 0).isOk());
    ASSERT_TRUE(
        vm2.memory().hostWrite(layout::kHashTableGpa, hashes_.toPage())
            .isOk());
    VerifierInputs inputs = inputs_;
    inputs.keep_shared.push_back({layout::kHashTableGpa, kPageSize});
    BootVerifier verifier(vm2.memory());
    Result<VerifiedBoot> boot = verifier.run(inputs);
    ASSERT_FALSE(boot.isOk());
    EXPECT_EQ(boot.status().code(), ErrorCode::kAccessDenied);
}

TEST_F(SevLaunchFixture, HostCannotTamperPreEncryptedState)
{
    launch(art_.bzimage, art_.bzimage, initrd_, KernelImageKind::kBzImage);
    // After LAUNCH_UPDATE_DATA the RMP locks the hash page.
    Status write = vm_->memory().hostWrite(layout::kHashTableGpa,
                                           ByteVec(kPageSize, 0));
    EXPECT_EQ(write.code(), ErrorCode::kAccessDenied);
}

// ------------------------------------------------------------ hash table

TEST(BootHashesPage, RoundTrip)
{
    BootHashes h = BootHashes::compute(toBytes("kernel"), toBytes("initrd"),
                                       asBytes("cmdline"));
    ByteVec page = h.toPage();
    ASSERT_EQ(page.size(), kPageSize);
    Result<BootHashes> back = BootHashes::fromPage(page);
    ASSERT_TRUE(back.isOk());
    EXPECT_EQ(back->kernel, h.kernel);
    EXPECT_EQ(back->initrd, h.initrd);
    EXPECT_EQ(back->kernel_size, 6u);
    ASSERT_TRUE(back->cmdline.has_value());
    EXPECT_EQ(*back->cmdline, *h.cmdline);
}

TEST(BootHashesPage, OptionalCmdline)
{
    BootHashes h =
        BootHashes::compute(toBytes("k"), toBytes("i"), std::nullopt);
    Result<BootHashes> back = BootHashes::fromPage(h.toPage());
    ASSERT_TRUE(back.isOk());
    EXPECT_FALSE(back->cmdline.has_value());
}

TEST(BootHashesPage, RejectsBadMagic)
{
    BootHashes h =
        BootHashes::compute(toBytes("k"), toBytes("i"), std::nullopt);
    ByteVec page = h.toPage();
    page[0] ^= 1;
    EXPECT_FALSE(BootHashes::fromPage(page).isOk());
}

TEST(BootHashesPage, RejectsTruncatedPage)
{
    BootHashes h =
        BootHashes::compute(toBytes("k"), toBytes("i"), std::nullopt);
    ByteVec page = h.toPage();
    // Cut inside the digest block: magic/flags/sizes parse, digests
    // don't.
    ByteVec cut(page.begin(), page.begin() + 40);
    EXPECT_FALSE(BootHashes::fromPage(cut).isOk());
    // Cut inside the size fields.
    ByteVec tiny(page.begin(), page.begin() + 10);
    EXPECT_FALSE(BootHashes::fromPage(tiny).isOk());
    // Empty page: not even the magic.
    EXPECT_FALSE(BootHashes::fromPage(ByteSpan()).isOk());
}

// --------------------------------------------------------------- binary

TEST(VerifierBinary, ThirteenKiBAndDeterministic)
{
    const ByteVec &bin = verifierBinary();
    EXPECT_EQ(bin.size(), 13 * kKiB);
    EXPECT_EQ(&bin, &verifierBinary());
    std::string banner(bin.begin(), bin.begin() + 18);
    EXPECT_EQ(banner, "SEVF-BOOT-VERIFIER");
    EXPECT_EQ(bloatedVerifierBinary(64 * kKiB).size(), 64 * kKiB);
}

TEST(VmlinuxStreamDigestTest, RejectsCorruptElf)
{
    const workload::KernelArtifacts &art = workload::cachedKernelArtifacts(
        workload::KernelConfig::kLupine, kScale);
    // An absurd e_phnum pushes the phdr table past the end of the file.
    ByteVec bad = art.vmlinux;
    storeLe<u16>(bad.data() + 56, 0xffff);
    EXPECT_FALSE(vmlinuxStreamDigest(bad).isOk());
    // Truncating mid-segment must also fail, not hash short data.
    ByteVec cut(art.vmlinux.begin(),
                art.vmlinux.begin() + static_cast<long>(image::kEhdrSize) + 8);
    EXPECT_FALSE(vmlinuxStreamDigest(cut).isOk());
}

TEST(VmlinuxStreamDigestTest, SensitiveToContent)
{
    const workload::KernelArtifacts &art = workload::cachedKernelArtifacts(
        workload::KernelConfig::kLupine, kScale);
    Result<crypto::Sha256Digest> a = vmlinuxStreamDigest(art.vmlinux);
    ASSERT_TRUE(a.isOk());
    ByteVec mutated = art.vmlinux;
    mutated[mutated.size() / 2] ^= 1;
    Result<crypto::Sha256Digest> b = vmlinuxStreamDigest(mutated);
    ASSERT_TRUE(b.isOk());
    EXPECT_NE(*a, *b);
    // And differs from the whole-file hash (padding is skipped).
    EXPECT_NE(*a, crypto::Sha256::digest(art.vmlinux));
}

} // namespace
} // namespace sevf::verifier
