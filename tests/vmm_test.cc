/**
 * @file
 * VMM tests: mptable geometry/checksums (Fig 7 sizes), boot_params
 * round-trip, fw_cfg staging, direct boot placement, and the
 * pre-encryption plan.
 */
#include <gtest/gtest.h>

#include "base/bytes.h"
#include "image/elf.h"
#include "verifier/verifier_binary.h"
#include "vmm/boot_params.h"
#include "vmm/fw_cfg.h"
#include "vmm/layout.h"
#include "vmm/microvm.h"
#include "vmm/mptable.h"
#include "workload/synthetic.h"

namespace sevf::vmm {
namespace {

constexpr Spa kSpaBase = 0x100000000ull;

// ---------------------------------------------------------------- mptable

TEST(Mptable, PaperSizeFormula)
{
    // Fig 7: 284 B + 20 B per CPU.
    EXPECT_EQ(mptableSize(1), 304u);
    EXPECT_EQ(mptableSize(2), 324u);
    EXPECT_EQ(mptableSize(1) - 20, 284u);
    for (u32 cpus : {1u, 2u, 4u, 32u}) {
        EXPECT_EQ(buildMptable(cpus).size(), mptableSize(cpus));
    }
}

TEST(Mptable, ValidatesAndCountsCpus)
{
    for (u32 cpus : {1u, 4u, 16u}) {
        ByteVec table = buildMptable(cpus);
        Result<u32> got = validateMptable(table);
        ASSERT_TRUE(got.isOk()) << got.status().toString();
        EXPECT_EQ(*got, cpus);
    }
}

TEST(Mptable, ChecksumDetectsCorruption)
{
    ByteVec table = buildMptable(1);
    table[20] ^= 0x01; // inside the config table
    EXPECT_FALSE(validateMptable(table).isOk());
}

TEST(Mptable, BadSignatureRejected)
{
    ByteVec table = buildMptable(1);
    table[0] = 'X';
    EXPECT_FALSE(validateMptable(table).isOk());
}

// ------------------------------------------------------------ boot params

TEST(BootParams, RoundTrip)
{
    BootParamsInput in;
    in.memory_size = 256 * kMiB;
    in.cmdline_gpa = layout::kCmdlineGpa;
    in.cmdline_size = 155;
    in.initrd_gpa = layout::kInitrdPrivateGpa;
    in.initrd_size = 14 * kMiB;
    in.kernel_entry = 0x1000200;

    ByteVec page = buildBootParams(in);
    ASSERT_EQ(page.size(), kPageSize);
    Result<BootParamsView> view = parseBootParams(page);
    ASSERT_TRUE(view.isOk()) << view.status().toString();
    EXPECT_EQ(view->cmdline_gpa, layout::kCmdlineGpa);
    EXPECT_EQ(view->cmdline_size, 155u);
    EXPECT_EQ(view->initrd_gpa, layout::kInitrdPrivateGpa);
    EXPECT_EQ(view->initrd_size, 14 * kMiB);
    EXPECT_EQ(view->kernel_entry, 0x1000200u);
}

TEST(BootParams, E820CoversGuestMemory)
{
    BootParamsInput in;
    in.memory_size = 256 * kMiB;
    Result<BootParamsView> view = parseBootParams(buildBootParams(in));
    ASSERT_TRUE(view.isOk());
    ASSERT_EQ(view->e820.size(), 3u);
    EXPECT_EQ(view->e820[0].addr, 0u);
    EXPECT_EQ(view->e820[0].type, 1u);
    EXPECT_EQ(view->e820[2].addr, 0x100000u);
    EXPECT_EQ(view->e820[2].addr + view->e820[2].size, 256 * kMiB);
}

TEST(BootParams, RejectsCorruptPage)
{
    ByteVec page = buildBootParams({});
    page[0x202] = 0;
    EXPECT_FALSE(parseBootParams(page).isOk());
    ByteVec tiny(100, 0);
    EXPECT_FALSE(parseBootParams(tiny).isOk());
}

// ---------------------------------------------------------------- fw_cfg

TEST(FwCfgTest, StagesAndFinds)
{
    memory::GuestMemory mem(4 * kMiB, kSpaBase, 0);
    FwCfg fw(mem, 0x100000, 2 * kMiB);
    ByteVec a = toBytes("item-a");
    ByteVec b = toBytes("item-bb");
    ASSERT_TRUE(fw.addItem("a", a).isOk());
    Result<FwCfg::Item> item_b = fw.addItem("b", b);
    ASSERT_TRUE(item_b.isOk());
    EXPECT_EQ(item_b->gpa, 0x100000u + a.size());

    Result<FwCfg::Item> found = fw.find("a");
    ASSERT_TRUE(found.isOk());
    EXPECT_EQ(*mem.hostRead(found->gpa, found->size), a);
    EXPECT_FALSE(fw.find("missing").isOk());
    EXPECT_EQ(fw.bytesStaged(), a.size() + b.size());
}

TEST(FwCfgTest, WindowOverflowRejected)
{
    memory::GuestMemory mem(4 * kMiB, kSpaBase, 0);
    FwCfg fw(mem, 0x100000, 1024);
    ByteVec big(2048, 1);
    EXPECT_EQ(fw.addItem("big", big).status().code(),
              ErrorCode::kResourceExhausted);
}

TEST(FwCfgTest, StageVmlinuxMatchesFileGeometry)
{
    const workload::KernelArtifacts &art = workload::cachedKernelArtifacts(
        workload::KernelConfig::kLupine, 1.0 / 32.0);
    memory::GuestMemory mem(16 * kMiB, kSpaBase, 0);
    FwCfg fw(mem, 0x400000, 8 * kMiB);
    ASSERT_TRUE(stageVmlinuxViaFwCfg(fw, art.vmlinux).isOk());

    // ehdr at window base, matching the file's first 64 bytes.
    Result<FwCfg::Item> ehdr = fw.find("kernel/ehdr");
    ASSERT_TRUE(ehdr.isOk());
    EXPECT_EQ(ehdr->gpa, 0x400000u);
    EXPECT_EQ(*mem.hostRead(ehdr->gpa, 64),
              ByteVec(art.vmlinux.begin(), art.vmlinux.begin() + 64));

    // Segment items sit at their ELF file offsets.
    Result<image::ElfLayout> layout = image::parseElfHeader(art.vmlinux);
    ASSERT_TRUE(layout.isOk());
    Result<image::ElfPhdr> p0 = image::parseElfPhdr(
        ByteSpan(art.vmlinux).subspan(layout->phoff, image::kPhdrSize));
    ASSERT_TRUE(p0.isOk());
    Result<FwCfg::Item> seg0 = fw.find("kernel/seg0");
    ASSERT_TRUE(seg0.isOk());
    EXPECT_EQ(seg0->gpa, 0x400000u + p0->offset);
    EXPECT_EQ(seg0->size, p0->filesz);
}

// ---------------------------------------------------------------- microvm

class MicroVmTest : public ::testing::Test
{
  protected:
    MicroVmTest()
        : art_(workload::cachedKernelArtifacts(
              workload::KernelConfig::kLupine, 1.0 / 32.0)),
          initrd_(workload::syntheticInitrd(512 * kKiB, 99))
    {
        config_.memory_size = 256 * kMiB; // staging windows live high
    }

    VmConfig config_;
    const workload::KernelArtifacts &art_;
    ByteVec initrd_;
};

TEST_F(MicroVmTest, DirectBootPlacesKernelAndStructs)
{
    MicroVm vm(config_, kSpaBase, 0);
    Result<DirectBootLoad> load = vm.directBoot(art_.vmlinux, initrd_);
    ASSERT_TRUE(load.isOk()) << load.status().toString();
    EXPECT_EQ(load->entry, art_.entry);
    EXPECT_GT(load->kernel_file_bytes, 0u);

    // First segment bytes appear at the load address.
    Result<image::ElfImage> elf = image::parseElf(art_.vmlinux);
    ASSERT_TRUE(elf.isOk());
    const image::ElfSegment &seg0 = elf->segments[0];
    EXPECT_EQ(*vm.memory().hostRead(seg0.vaddr, 64),
              ByteVec(seg0.data.begin(), seg0.data.begin() + 64));

    // Structures parse back.
    Result<BootParamsView> bp = parseBootParams(
        *vm.memory().hostRead(load->structs.boot_params_gpa, kPageSize));
    ASSERT_TRUE(bp.isOk());
    EXPECT_EQ(bp->initrd_gpa, layout::kInitrdDirectGpa);
    EXPECT_TRUE(
        validateMptable(*vm.memory().hostRead(load->structs.mptable_gpa,
                                              load->structs.mptable_size))
            .isOk());
}

TEST_F(MicroVmTest, StageMeasuredComponents)
{
    MicroVm vm(config_, kSpaBase, 0);
    Result<StagedComponents> staged =
        vm.stageMeasuredComponents(art_.bzimage, initrd_);
    ASSERT_TRUE(staged.isOk());
    EXPECT_EQ(staged->kernel_gpa, layout::kKernelStagingGpa);
    EXPECT_EQ(*vm.memory().hostRead(staged->kernel_gpa, 64),
              ByteVec(art_.bzimage.begin(), art_.bzimage.begin() + 64));
}

TEST_F(MicroVmTest, PreEncryptionPlanShapeAndSize)
{
    MicroVm vm(config_, kSpaBase, 0);
    Result<BootStructs> structs = vm.stageBootStructs(0, 0, 0);
    ASSERT_TRUE(structs.isOk());
    verifier::BootHashes hashes =
        verifier::BootHashes::compute(art_.bzimage, initrd_, std::nullopt);
    Result<std::vector<attest::PreEncryptedRegion>> plan =
        vm.buildPreEncryptionPlan(verifier::verifierBinary(), hashes,
                                  *structs);
    ASSERT_TRUE(plan.isOk()) << plan.status().toString();
    ASSERT_EQ(plan->size(), 5u);
    EXPECT_EQ((*plan)[0].name, "boot_verifier");
    EXPECT_EQ((*plan)[0].bytes.size(), verifier::kVerifierBinarySize);
    EXPECT_EQ((*plan)[2].name, "mptable");
    EXPECT_EQ((*plan)[2].bytes.size(), mptableSize(config_.vcpus));
    EXPECT_EQ((*plan)[4].name, "cmdline");
    EXPECT_EQ((*plan)[4].bytes.size(), config_.cmdline.size());

    // The whole root of trust stays tiny (the §4 point).
    EXPECT_LT(attest::totalPreEncryptedBytes(*plan), 32 * kKiB);
    // Default Firecracker cmdline is the Fig 7 155 bytes.
    EXPECT_EQ(config_.cmdline.size(), 155u);
}

TEST_F(MicroVmTest, DirectBootRejectsGarbageKernel)
{
    MicroVm vm(config_, kSpaBase, 0);
    ByteVec garbage(1000, 0xab);
    EXPECT_FALSE(vm.directBoot(garbage, initrd_).isOk());
}

TEST_F(MicroVmTest, StagingRejectsOversizeComponents)
{
    VmConfig tiny = config_;
    tiny.memory_size = 256 * kMiB;
    MicroVm vm(tiny, kSpaBase, 0);
    // An "initrd" too large for the staging window tail.
    ByteVec huge(64 * kMiB, 1);
    EXPECT_FALSE(vm.stageMeasuredComponents(art_.bzimage, huge).isOk());
}

TEST(DebugPortTest, RecordsAndRenders)
{
    DebugPort port;
    port.record(sim::Duration::millis(1), "vmm_start");
    port.record(sim::Duration::millis(5), "enter_guest");
    ASSERT_EQ(port.events().size(), 2u);
    std::string text = port.render();
    EXPECT_NE(text.find("vmm_start"), std::string::npos);
    EXPECT_NE(text.find("5.000ms"), std::string::npos);
}

} // namespace
} // namespace sevf::vmm
