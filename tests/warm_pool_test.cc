/**
 * @file
 * Warm-start exploration tests (§7.1): keep-alive pool behaviour and
 * the measured dedup gap between plain and SEV guest memory.
 */
#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "cache/template_cache.h"
#include "core/warm_pool.h"
#include "vmm/microvm.h"
#include "workload/synthetic.h"

namespace sevf::core {
namespace {

constexpr double kScale = 1.0 / 32.0;

class WarmPoolTest : public ::testing::Test
{
  protected:
    WarmPoolTest() : platform_(sim::CostParams::deterministic())
    {
        base_.kernel = workload::KernelConfig::kAws;
        base_.scale = kScale;
        base_.attest = false;
    }

    Platform platform_;
    LaunchRequest base_;
};

TEST_F(WarmPoolTest, FirstInvocationColdThenWarm)
{
    WarmPool pool(platform_, StrategyKind::kSeveriFastBz, base_, 4);
    Result<Invocation> first = pool.invoke(1);
    ASSERT_TRUE(first.isOk()) << first.status().toString();
    EXPECT_FALSE(first->warm);
    EXPECT_GT(first->startup_latency, sim::Duration::millis(50));

    Result<Invocation> second = pool.invoke(2);
    ASSERT_TRUE(second.isOk());
    EXPECT_TRUE(second->warm);
    EXPECT_LT(second->startup_latency, sim::Duration::millis(10));

    EXPECT_EQ(pool.stats().cold_starts, 1u);
    EXPECT_EQ(pool.stats().warm_hits, 1u);
    EXPECT_EQ(pool.stats().resident_guest_bytes, base_.vm.memory_size);
}

TEST_F(WarmPoolTest, WarmLatencyFarBelowCold)
{
    WarmPool pool(platform_, StrategyKind::kSeveriFastBz, base_, 2);
    double cold = 0, warm = 0;
    for (u64 i = 0; i < 10; ++i) {
        Result<Invocation> inv = pool.invoke(i);
        ASSERT_TRUE(inv.isOk());
        (inv->warm ? warm : cold) = inv->startup_latency.toMsF();
    }
    EXPECT_GT(cold / warm, 10.0);
}

TEST_F(WarmPoolTest, KeepVmRetainsBootedMemory)
{
    LaunchRequest req = base_;
    req.keep_vm = true;
    Result<LaunchResult> run =
        makeStrategy(StrategyKind::kSeveriFastBz)->launch(platform_, req);
    ASSERT_TRUE(run.isOk());
    ASSERT_NE(run->vm, nullptr);
    EXPECT_EQ(run->vm->memory().size(), req.vm.memory_size);

    // Without the flag, no VM is retained.
    req.keep_vm = false;
    Result<LaunchResult> light =
        makeStrategy(StrategyKind::kSeveriFastBz)->launch(platform_, req);
    ASSERT_TRUE(light.isOk());
    EXPECT_EQ(light->vm, nullptr);
}

TEST_F(WarmPoolTest, DedupCollapsesUnderSev)
{
    auto boot_pair = [&](StrategyKind kind) {
        LaunchRequest req = base_;
        req.keep_vm = true;
        req.seed = 11;
        Result<LaunchResult> a =
            makeStrategy(kind)->launch(platform_, req);
        req.seed = 12;
        Result<LaunchResult> b =
            makeStrategy(kind)->launch(platform_, req);
        EXPECT_TRUE(a.isOk());
        EXPECT_TRUE(b.isOk());
        return std::make_pair(a.take(), b.take());
    };

    auto [sa, sb] = boot_pair(StrategyKind::kStockFirecracker);
    DedupStats stock = measureCrossVmDedup(sa.vm->memory(),
                                           sb.vm->memory());
    auto [ea, eb] = boot_pair(StrategyKind::kSeveriFastBz);
    DedupStats sev = measureCrossVmDedup(ea.vm->memory(),
                                         eb.vm->memory());

    // Identical plain guests dedup (nearly) everything; SEV guests
    // lose most of the non-zero pages to unique ciphertext.
    EXPECT_GT(stock.nonzeroDedupFraction(), 0.95);
    EXPECT_LT(sev.nonzeroDedupFraction(),
              stock.nonzeroDedupFraction() * 0.6);
    EXPECT_GT(sev.nonzero_pages, stock.nonzero_pages)
        << "encrypted copies inflate the non-zero footprint";
}

TEST_F(WarmPoolTest, ZeroCapacityPoolAlwaysFallsBackCold)
{
    WarmPool pool(platform_, StrategyKind::kSeveriFastBz, base_, 0);
    for (u64 i = 0; i < 3; ++i) {
        Result<Invocation> inv = pool.invoke(i);
        ASSERT_TRUE(inv.isOk()) << inv.status().toString();
        EXPECT_FALSE(inv->warm);
    }
    EXPECT_EQ(pool.stats().cold_starts, 3u);
    EXPECT_EQ(pool.stats().warm_hits, 0u);
    EXPECT_EQ(pool.stats().resident_vms, 0u);
    EXPECT_EQ(pool.stats().resident_guest_bytes, 0u);
}

TEST_F(WarmPoolTest, ConcurrentCheckoutExhaustionFallsBackCold)
{
    constexpr std::size_t kThreads = 4;
    WarmPool pool(platform_, StrategyKind::kSeveriFastBz, base_, 1);

    // An empty pool hit by a burst: losers of the checkout race must
    // cold-boot, never block or fail. Outcomes depend on scheduling,
    // so assert the invariants rather than an exact split.
    std::vector<std::thread> threads;
    for (std::size_t i = 0; i < kThreads; ++i) {
        threads.emplace_back([&, i] {
            Result<Invocation> inv = pool.invoke(i);
            EXPECT_TRUE(inv.isOk()) << inv.status().toString();
        });
    }
    for (std::thread &t : threads) {
        t.join();
    }

    WarmPoolStats stats = pool.stats();
    EXPECT_EQ(stats.cold_starts + stats.warm_hits, kThreads);
    EXPECT_GE(stats.cold_starts, 1u) << "the empty pool forces a cold";
    EXPECT_LE(stats.resident_vms, 1u) << "capacity bounds keep-alives";
    EXPECT_EQ(stats.resident_guest_bytes,
              stats.resident_vms * base_.vm.memory_size);

    // After the burst a keep-alive is idle again.
    Result<Invocation> after = pool.invoke(99);
    ASSERT_TRUE(after.isOk());
    EXPECT_TRUE(after->warm);
}

TEST_F(WarmPoolTest, ColdFallbackRidesTheTemplateCacheTier)
{
    // Reference cold boot; it also publishes the launch template into
    // the shared platform's cache.
    Result<LaunchResult> cold =
        makeStrategy(StrategyKind::kSeveriFastBz)->launch(platform_, base_);
    ASSERT_TRUE(cold.isOk()) << cold.status().toString();
    ASSERT_FALSE(cold->cache_hit);

    // The pool's cold fallback (pool tier miss) now boots from the
    // template (cache tier hit) - and because a hit is bit-identical in
    // virtual time, the invocation's startup latency equals the true
    // cold boot's exactly.
    u64 hits_before = platform_.templateCache().stats().hits;
    WarmPool pool(platform_, StrategyKind::kSeveriFastBz, base_, 1);
    Result<Invocation> inv = pool.invoke(7);
    ASSERT_TRUE(inv.isOk()) << inv.status().toString();
    EXPECT_FALSE(inv->warm);
    EXPECT_EQ(pool.stats().cold_starts, 1u);
    EXPECT_EQ(platform_.templateCache().stats().hits, hits_before + 1);
    EXPECT_EQ(inv->startup_latency.ns(), cold->bootTime().ns());

    // Both warm tiers reproduce the cold measurement: the kept VM
    // (keep_vm) and the template replay.
    LaunchRequest kept = base_;
    kept.keep_vm = true;
    Result<LaunchResult> tiered =
        makeStrategy(StrategyKind::kSeveriFastBz)->launch(platform_, kept);
    ASSERT_TRUE(tiered.isOk());
    EXPECT_TRUE(tiered->cache_hit);
    ASSERT_NE(tiered->vm, nullptr);
    EXPECT_EQ(tiered->measurement, cold->measurement);
}

TEST_F(WarmPoolTest, DedupScannerCountsExactlyOnSyntheticImages)
{
    memory::GuestMemory a(8 * kPageSize, 0x100000000ull, 0);
    memory::GuestMemory b(8 * kPageSize, 0x100000000ull, 0);
    // b shares pages 0..3 with a; pages 4..5 differ; 6..7 zero in both.
    for (u64 p = 0; p < 6; ++p) {
        ByteVec page(kPageSize, static_cast<u8>(p + 1));
        ASSERT_TRUE(a.hostWrite(p * kPageSize, page).isOk());
        if (p < 4) {
            ASSERT_TRUE(b.hostWrite(p * kPageSize, page).isOk());
        } else {
            ByteVec other(kPageSize, static_cast<u8>(0xf0 + p));
            ASSERT_TRUE(b.hostWrite(p * kPageSize, other).isOk());
        }
    }
    DedupStats stats = measureCrossVmDedup(a, b);
    EXPECT_EQ(stats.pages_scanned, 8u);
    EXPECT_EQ(stats.dedupable_pages, 6u); // 4 shared + 2 zero
    EXPECT_EQ(stats.nonzero_pages, 6u);
    EXPECT_EQ(stats.dedupable_nonzero, 4u);
}

} // namespace
} // namespace sevf::core
