/**
 * @file
 * Workload generator tests: compressibility control, kernel artifact
 * synthesis (valid ELF + bzImage at target sizes/ratios), and the
 * attestation initrd.
 */
#include <gtest/gtest.h>

#include "compress/codec.h"
#include "image/bzimage.h"
#include "image/cpio.h"
#include "image/elf.h"
#include "workload/kernel_spec.h"
#include "workload/synthetic.h"

namespace sevf::workload {
namespace {

constexpr double kTestScale = 1.0 / 16.0;

const compress::Codec &
lz4()
{
    return compress::codecFor(compress::CodecKind::kLz4);
}

// ------------------------------------------------------------- specs

TEST(KernelSpecs, PaperSizes)
{
    // Fig 8 exactly.
    EXPECT_EQ(kernelSpec(KernelConfig::kLupine).vmlinux_size, 23 * kMiB);
    EXPECT_EQ(kernelSpec(KernelConfig::kAws).vmlinux_size, 43 * kMiB);
    EXPECT_EQ(kernelSpec(KernelConfig::kUbuntu).vmlinux_size, 61 * kMiB);
    EXPECT_EQ(kernelSpec(KernelConfig::kUbuntu).bzimage_target_size,
              15 * kMiB);
}

TEST(KernelSpecs, OrderedSmallMediumLarge)
{
    const auto &specs = allKernelSpecs();
    ASSERT_EQ(specs.size(), 3u);
    EXPECT_LT(specs[0].vmlinux_size, specs[1].vmlinux_size);
    EXPECT_LT(specs[1].vmlinux_size, specs[2].vmlinux_size);
    EXPECT_LT(specs[0].base_linux_boot, specs[2].base_linux_boot);
}

TEST(KernelSpecs, LupineHasNoNetwork)
{
    EXPECT_FALSE(kernelSpec(KernelConfig::kLupine).has_network);
    EXPECT_TRUE(kernelSpec(KernelConfig::kAws).has_network);
}

// ----------------------------------------------------- compressibility

TEST(CompressibleBytes, SizeAndDeterminism)
{
    ByteVec a = compressibleBytes(100000, 0.3, 7);
    ByteVec b = compressibleBytes(100000, 0.3, 7);
    ByteVec c = compressibleBytes(100000, 0.3, 8);
    EXPECT_EQ(a.size(), 100000u);
    EXPECT_EQ(a, b);
    EXPECT_NE(a, c);
}

TEST(CompressibleBytes, FractionControlsRatio)
{
    u64 size = 512 * 1024;
    u64 low = lz4().compress(compressibleBytes(size, 0.1, 3)).size();
    u64 mid = lz4().compress(compressibleBytes(size, 0.5, 3)).size();
    u64 high = lz4().compress(compressibleBytes(size, 0.9, 3)).size();
    EXPECT_LT(low, mid);
    EXPECT_LT(mid, high);
    EXPECT_LT(low, size / 4);
    EXPECT_GT(high, size / 2);
}

TEST(CompressibleBytes, CalibrationHitsTarget)
{
    u64 size = 1 * kMiB;
    u64 target = 300 * 1024;
    double frac = calibrateRandomFraction(size, target, 11);
    u64 got = lz4().compress(compressibleBytes(size, frac, 11)).size();
    double rel = std::abs(static_cast<double>(got) -
                          static_cast<double>(target)) /
                 static_cast<double>(target);
    EXPECT_LT(rel, 0.08);
}

// ------------------------------------------------------------ kernels

class KernelArtifactsTest
    : public ::testing::TestWithParam<KernelConfig>
{
};

TEST_P(KernelArtifactsTest, ProducesValidLoadableImages)
{
    const KernelArtifacts &art = cachedKernelArtifacts(GetParam(), kTestScale);

    // vmlinux is a parseable x86-64 ELF with the expected entry.
    Result<image::ElfImage> elf = image::parseElf(art.vmlinux);
    ASSERT_TRUE(elf.isOk()) << elf.status().toString();
    EXPECT_EQ(elf->entry, art.entry);
    EXPECT_GE(elf->segments.size(), 3u);

    // bzImage parses, is LZ4, and round-trips back to the vmlinux.
    Result<image::BzImageInfo> info = image::parseBzImage(art.bzimage);
    ASSERT_TRUE(info.isOk()) << info.status().toString();
    EXPECT_EQ(info->codec, compress::CodecKind::kLz4);
    Result<ByteVec> back = image::extractVmlinux(art.bzimage);
    ASSERT_TRUE(back.isOk());
    EXPECT_EQ(*back, art.vmlinux);
}

TEST_P(KernelArtifactsTest, SizesNearPaperTargets)
{
    const KernelArtifacts &art = cachedKernelArtifacts(GetParam(), kTestScale);
    const KernelSpec &spec = kernelSpec(GetParam());

    double vm_target =
        static_cast<double>(spec.vmlinux_size) * kTestScale;
    double bz_target =
        static_cast<double>(spec.bzimage_target_size) * kTestScale;

    EXPECT_NEAR(static_cast<double>(art.vmlinux.size()), vm_target,
                vm_target * 0.05);
    EXPECT_NEAR(static_cast<double>(art.bzimage.size()), bz_target,
                bz_target * 0.15);
}

INSTANTIATE_TEST_SUITE_P(AllConfigs, KernelArtifactsTest,
                         ::testing::Values(KernelConfig::kLupine,
                                           KernelConfig::kAws,
                                           KernelConfig::kUbuntu),
                         [](const auto &info) {
                             return std::string(
                                 kernelConfigName(info.param));
                         });

TEST(KernelArtifacts, CachedReturnsSameObject)
{
    const KernelArtifacts &a =
        cachedKernelArtifacts(KernelConfig::kLupine, kTestScale);
    const KernelArtifacts &b =
        cachedKernelArtifacts(KernelConfig::kLupine, kTestScale);
    EXPECT_EQ(&a, &b);
}

// ------------------------------------------------------------- initrd

TEST(Initrd, IsValidCpioWithAttestationTooling)
{
    ByteVec initrd = syntheticInitrd(2 * kMiB, 42);
    Result<std::vector<image::CpioEntry>> entries = image::parseCpio(initrd);
    ASSERT_TRUE(entries.isOk()) << entries.status().toString();
    EXPECT_NE(image::findEntry(*entries, "init"), nullptr);
    EXPECT_NE(image::findEntry(*entries, "bin/attest-tool"), nullptr);
    EXPECT_NE(image::findEntry(*entries, "lib/modules/sev-guest.ko"),
              nullptr);
}

TEST(Initrd, HitsTargetSize)
{
    for (u64 target : {2 * kMiB, 4 * kMiB}) {
        ByteVec initrd = syntheticInitrd(target, 42);
        EXPECT_NEAR(static_cast<double>(initrd.size()),
                    static_cast<double>(target),
                    static_cast<double>(target) * 0.02);
    }
}

TEST(Initrd, BarelyCompressible)
{
    // §3.2: the attestation initrd LZ4s 14 MiB -> ~12 MiB (ratio ~0.86).
    ByteVec initrd = syntheticInitrd(4 * kMiB, 42);
    u64 compressed = lz4().compress(initrd).size();
    double ratio =
        static_cast<double>(compressed) / static_cast<double>(initrd.size());
    EXPECT_GT(ratio, 0.70);
    EXPECT_LT(ratio, 0.95);
}

TEST(Initrd, CachedDeterministic)
{
    const ByteVec &a = cachedInitrd(kTestScale);
    const ByteVec &b = cachedInitrd(kTestScale);
    EXPECT_EQ(&a, &b);
    EXPECT_NEAR(static_cast<double>(a.size()),
                static_cast<double>(kInitrdUncompressedSize) * kTestScale,
                static_cast<double>(kInitrdUncompressedSize) * kTestScale *
                    0.05);
}

// ----------------------------------------------------------- firmware

TEST(Firmware, BlobShapedLikeOvmf)
{
    ByteVec fw = firmwareBlob(1 * kMiB, 7);
    EXPECT_EQ(fw.size(), 1 * kMiB);
    std::string head(fw.begin(), fw.begin() + 4);
    EXPECT_EQ(head, "_FVH");
    // Deterministic.
    EXPECT_EQ(fw, firmwareBlob(1 * kMiB, 7));
    EXPECT_NE(fw, firmwareBlob(1 * kMiB, 8));
}

} // namespace
} // namespace sevf::workload
