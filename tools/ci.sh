#!/bin/sh
# Tier-1 CI gate for severifast. Runs the full verify twice — a plain
# -Werror build and an ASan+UBSan build — plus the project linter, each in
# its own build tree so the configurations never clobber one another.
#
#   tools/ci.sh            # run everything
#   CI_JOBS=4 tools/ci.sh  # cap build/test parallelism
#
# Exits nonzero on the first failing stage.
set -eu

root="$(cd "$(dirname "$0")/.." && pwd)"
jobs="${CI_JOBS:-$(nproc 2>/dev/null || echo 4)}"

run_matrix_entry() {
    name="$1"
    shift
    build="$root/build-ci-$name"
    echo "==> [$name] configure: $*"
    cmake -B "$build" -S "$root" "$@" >/dev/null
    echo "==> [$name] build"
    cmake --build "$build" -j "$jobs"
    echo "==> [$name] ctest"
    (cd "$build" && ctest --output-on-failure -j "$jobs")
}

# 1. Plain build, warnings are errors. This is the tier-1 verify.
run_matrix_entry werror -DSEVF_WERROR=ON

# 2. Same suite under AddressSanitizer + UBSan with fatal-on-error, so any
#    heap misuse or UB in the test/bench paths fails the run.
run_matrix_entry asan -DSEVF_WERROR=ON -DSEVF_SANITIZE=address,undefined

# 3. Project linter over the library sources, plus its self-test fixture.
#    Both also run under ctest above; running them standalone keeps the lint
#    usable when the library itself does not build.
lint="$root/build-ci-werror/tools/sevf_lint"
echo "==> [lint] $lint --root src"
"$lint" --root "$root/src"
echo "==> [lint] selftest"
"$lint" --selftest "$root/tests/lint_fixture"

echo "==> CI green: werror + asan,ubsan + lint"
