#!/bin/sh
# Tier-1 CI gate for severifast. Runs the full verify three times — a
# plain -Werror build, an ASan+UBSan build, and an SEVF_TAINT=ON build
# (secret-flow monitor in enforce mode) — plus the project linter and
# the launch-protocol model checker, each configuration in its own
# build tree so they never clobber one another.
#
#   tools/ci.sh            # run everything
#   CI_JOBS=4 tools/ci.sh  # cap build/test parallelism
#
# Exits nonzero on the first failing stage.
set -eu

root="$(cd "$(dirname "$0")/.." && pwd)"
jobs="${CI_JOBS:-$(nproc 2>/dev/null || echo 4)}"

# 0. Repo hygiene: build trees must never be committed. Catches both
#    tracked stragglers and a regressed .gitignore.
if command -v git >/dev/null 2>&1 && [ -d "$root/.git" ]; then
    echo "==> [hygiene] no tracked build trees"
    tracked="$(cd "$root" && git ls-files | grep -E '^build[^/]*/' || true)"
    if [ -n "$tracked" ]; then
        echo "error: build trees are tracked in git:" >&2
        echo "$tracked" | head >&2
        echo "run: git rm -r --cached build* (and keep .gitignore's" \
             "/build/ + /build-*/ entries)" >&2
        exit 1
    fi
fi

run_matrix_entry() {
    name="$1"
    shift
    build="$root/build-ci-$name"
    echo "==> [$name] configure: $*"
    cmake -B "$build" -S "$root" "$@" >/dev/null
    echo "==> [$name] build"
    cmake --build "$build" -j "$jobs"
    echo "==> [$name] ctest"
    (cd "$build" && ctest --output-on-failure -j "$jobs")
}

# 1. Plain build, warnings are errors. This is the tier-1 verify.
run_matrix_entry werror -DSEVF_WERROR=ON

# 2. Same suite under AddressSanitizer + UBSan with fatal-on-error, so any
#    heap misuse or UB in the test/bench paths fails the run.
run_matrix_entry asan -DSEVF_WERROR=ON -DSEVF_SANITIZE=address,undefined

# 3. Full suite with the secret-flow taint monitor defaulting to enforce:
#    a single SECRET byte reaching a host-visible sink panics the test.
run_matrix_entry taint -DSEVF_WERROR=ON -DSEVF_TAINT=ON

# 4. Project linter over the library sources (with the secret-flow
#    source list), plus its self-test fixture. Both also run under ctest
#    above; running them standalone keeps the lint usable when the
#    library itself does not build.
lint="$root/build-ci-werror/tools/sevf_lint"
echo "==> [lint] $lint --root src --secret-sources tools/secret-sources.txt"
"$lint" --root "$root/src" --secret-sources "$root/tools/secret-sources.txt"
echo "==> [lint] selftest"
"$lint" --selftest "$root/tests/lint_fixture"

# 5. Launch-protocol model check: exhaustive interleavings of the SNP
#    launch commands cross-checked against the live device model, then
#    the seeded-mutant run proving the checker catches real holes.
model="$root/build-ci-werror/tools/sevf_model"
echo "==> [model] clean verification"
"$model" --guests 2 --depth 16 --sweep 4
echo "==> [model] seeded mutants must be caught"
"$model" --guests 2 --depth 8 --sweep 3 --all-mutants

echo "==> CI green: hygiene + werror + asan,ubsan + taint-enforce + lint + model"
