#!/bin/sh
# Tier-1 CI gate for severifast. Runs the full verify four times — a
# plain -Werror build, an ASan+UBSan build, an SEVF_TAINT=ON build
# (secret-flow monitor in enforce mode), and a ThreadSanitizer build
# over the entire suite — plus the project linter (including its
# guarded-by / lock-order / interprocedural secret-flow passes), a
# clang -Wthread-safety build when clang is installed, the
# launch-protocol model checker, and the wall-clock perf harness, each
# configuration in its own build tree so they never clobber one
# another.
#
#   tools/ci.sh            # run everything
#   CI_JOBS=4 tools/ci.sh  # cap build/test parallelism
#
# Exits nonzero on the first failing stage.
set -eu

root="$(cd "$(dirname "$0")/.." && pwd)"
jobs="${CI_JOBS:-$(nproc 2>/dev/null || echo 4)}"

# 0. Repo hygiene: build trees must never be committed. Catches both
#    tracked stragglers and a regressed .gitignore.
if command -v git >/dev/null 2>&1 && [ -d "$root/.git" ]; then
    echo "==> [hygiene] no tracked build trees"
    tracked="$(cd "$root" && git ls-files | grep -E '^build[^/]*/' || true)"
    if [ -n "$tracked" ]; then
        echo "error: build trees are tracked in git:" >&2
        echo "$tracked" | head >&2
        echo "run: git rm -r --cached build* (and keep .gitignore's" \
             "/build/ + /build-*/ entries)" >&2
        exit 1
    fi
fi

run_matrix_entry() {
    name="$1"
    shift
    build="$root/build-ci-$name"
    echo "==> [$name] configure: $*"
    cmake -B "$build" -S "$root" "$@" >/dev/null
    echo "==> [$name] build"
    cmake --build "$build" -j "$jobs"
    echo "==> [$name] ctest"
    (cd "$build" && ctest --output-on-failure -j "$jobs")
}

# 1. Plain build, warnings are errors. This is the tier-1 verify.
run_matrix_entry werror -DSEVF_WERROR=ON

# 2. Same suite under AddressSanitizer + UBSan with fatal-on-error, so any
#    heap misuse or UB in the test/bench paths fails the run.
run_matrix_entry asan -DSEVF_WERROR=ON -DSEVF_SANITIZE=address,undefined

# 3. Full suite with the secret-flow taint monitor defaulting to enforce:
#    a single SECRET byte reaching a host-visible sink panics the test.
run_matrix_entry taint -DSEVF_WERROR=ON -DSEVF_TAINT=ON

# 4. ThreadSanitizer over the full suite. TSan cannot be combined with
#    ASan, hence its own matrix entry. No tests are excluded: the whole
#    suite passes under TSan in ~6 minutes, with calibration_test
#    (~2.5 min, TSan's ~10x slowdown on a CPU-bound loop) dominating —
#    slow, but it exercises the ThreadPool-backed measurement path, so
#    it stays in.
run_matrix_entry tsan -DSEVF_WERROR=ON -DSEVF_SANITIZE=thread

# 5. Project linter over the library sources (with the secret-flow
#    source list and the documented lock-acquisition order), plus its
#    self-test fixture. Both also run under ctest above; running them
#    standalone keeps the lint usable when the library itself does not
#    build.
lint="$root/build-ci-werror/tools/sevf_lint"
echo "==> [lint] $lint --root src --secret-sources tools/secret-sources.txt" \
     "--lock-order tools/lock-order.txt --tcb-budget tools/tcb-budget.txt"
"$lint" --root "$root/src" \
    --secret-sources "$root/tools/secret-sources.txt" \
    --lock-order "$root/tools/lock-order.txt" \
    --tcb-budget "$root/tools/tcb-budget.txt" \
    --jobs "$jobs" --stats
echo "==> [lint] selftest"
"$lint" --selftest "$root/tests/lint_fixture"

# 5a. Root-of-trust audit: the TCB inventory must match the committed
#     baseline byte-for-byte (tools/tcb-baseline.json; regenerate with
#     --tcb-out after a reviewed change), the machine-readable report
#     must stay clean, and the seeded mutants must be caught — a
#     verifier that grows a gzip call or a parser that loses a bounds
#     check fails here even if every test still passes.
tcb_dir="$root/build-ci-werror/tcb-ci"
mkdir -p "$tcb_dir"
echo "==> [tcb] json report + inventory"
"$lint" --root "$root/src" \
    --secret-sources "$root/tools/secret-sources.txt" \
    --lock-order "$root/tools/lock-order.txt" \
    --tcb-budget "$root/tools/tcb-budget.txt" \
    --jobs "$jobs" --format=json \
    --tcb-out "$tcb_dir/tcb-inventory.json" >"$tcb_dir/report.json"
echo "==> [tcb] inventory matches committed baseline"
if ! diff -u "$root/tools/tcb-baseline.json" \
        "$tcb_dir/tcb-inventory.json"; then
    echo "error: TCB inventory drifted from tools/tcb-baseline.json;" >&2
    echo "review the diff, then regenerate the baseline with:" >&2
    echo "  sevf_lint --root src --tcb-budget tools/tcb-budget.txt" \
         "--tcb-out tools/tcb-baseline.json" >&2
    exit 1
fi
echo "==> [tcb] seeded mutants must be caught"
sh "$root/tools/tcb_mutants.sh" "$lint" "$root"

# 5b. Clang thread-safety analysis: the SEVF_GUARDED_BY / SEVF_REQUIRES
#     annotations compile to Clang capability attributes, so a clang
#     build with -DSEVF_THREAD_SAFETY=ON turns -Wthread-safety (fatal
#     under -Werror) loose on the whole tree. Skipped with a notice when
#     clang++ is not installed — sevf_lint's guarded-by / lock-order
#     passes above are the compiler-independent fallback.
if command -v clang++ >/dev/null 2>&1; then
    run_matrix_entry thread-safety \
        -DCMAKE_CXX_COMPILER=clang++ \
        -DSEVF_WERROR=ON -DSEVF_THREAD_SAFETY=ON
else
    echo "==> [thread-safety] SKIPPED: clang++ not found;" \
         "install clang to run -Wthread-safety over the annotations"
fi

# 6. Launch-protocol model check: exhaustive interleavings of the SNP
#    launch commands cross-checked against the live device model, then
#    the seeded-mutant run proving the checker catches real holes.
model="$root/build-ci-werror/tools/sevf_model"
echo "==> [model] clean verification"
"$model" --guests 2 --depth 16 --sweep 4
echo "==> [model] seeded mutants must be caught"
"$model" --guests 2 --depth 8 --sweep 3 --all-mutants

# 7. Wall-clock perf harness: real kernel throughput, the parallel
#    pre-encrypt pipeline's 1..N scaling with its built-in bit-identity
#    check, and per-strategy launch latency. Writes BENCH_wallclock.json
#    at the repo root so runs are archived next to the sources; the two
#    cache benches then merge their sections into the same file —
#    bench_cache_hit asserts hit-vs-cold bit-identity for all five
#    strategies, bench_fig12_concurrent asserts the admission pipeline's
#    aggregate-throughput gain over sequential cold boots.
bench="$root/build-ci-werror/bench/bench_wallclock"
echo "==> [bench] $bench BENCH_wallclock.json"
(cd "$root" && "$bench" "$root/BENCH_wallclock.json")
echo "==> [bench] cache hit/miss (bit-identity gate)"
(cd "$root" && "$root/build-ci-werror/bench/bench_cache_hit" \
    "$root/BENCH_wallclock.json")
echo "==> [bench] concurrent admission pipeline"
(cd "$root" && "$root/build-ci-werror/bench/bench_fig12_concurrent" \
    "$root/BENCH_wallclock.json")
echo "==> [bench] service fairness + sharded-cache throughput gates"
(cd "$root" && "$root/build-ci-werror/bench/bench_service_fairness" \
    "$root/BENCH_wallclock.json")

# 8. Observability: boot one SEV-SNP launch with tracing + metrics on,
#    then validate both exports with sevf_obscheck — Chrome-trace
#    structure, >= 95% sim-time span coverage, Prometheus syntax, the
#    PSP queue-depth / kernel-throughput / fault / retry families the
#    figures and the runbook need, and the doc-drift gates (every
#    exported metric/span name must appear in docs/OBSERVABILITY.md;
#    every reliability signal in docs/RELIABILITY.md).
obs_dir="$root/build-ci-werror/obs-ci"
mkdir -p "$obs_dir"
boot="$root/build-ci-werror/tools/sevf_boot"
echo "==> [obs] traced SEV-SNP launch"
"$boot" --strategy=severifast --mode=sev-snp \
    --trace-out="$obs_dir/trace.json" \
    --metrics-out="$obs_dir/metrics.prom" >/dev/null
echo "==> [obs] validate exports + doc-drift gates"
"$root/build-ci-werror/tools/sevf_obscheck" \
    --trace "$obs_dir/trace.json" \
    --metrics "$obs_dir/metrics.prom" \
    --docs "$root/docs/OBSERVABILITY.md" \
    --reliability "$root/docs/RELIABILITY.md"

# 9. Launch-template cache, end to end through the CLI: two boots
#    sharing a disk cache dir must produce a cold miss then a disk hit
#    with an IDENTICAL launch measurement, and the TCB inventory from
#    stage 5a must contain no cache/ module — the cache stays outside
#    the root of trust.
cache_dir="$root/build-ci-werror/cache-ci"
rm -rf "$cache_dir"
mkdir -p "$cache_dir"
json_field() { sed -n "s/.*\"$2\":\"\{0,1\}\([^,\"]*\)\"\{0,1\}[,}].*/\1/p" "$1"; }
echo "==> [cache] cold boot (miss) into $cache_dir"
"$boot" --strategy=severifast --mode=sev-snp --no-attest --json \
    --cache-dir "$cache_dir/templates" >"$cache_dir/cold.json"
echo "==> [cache] second boot must hit from disk"
"$boot" --strategy=severifast --mode=sev-snp --no-attest --json \
    --cache-dir "$cache_dir/templates" >"$cache_dir/warm.json"
cold_hit="$(json_field "$cache_dir/cold.json" cache_hit)"
warm_hit="$(json_field "$cache_dir/warm.json" cache_hit)"
cold_meas="$(json_field "$cache_dir/cold.json" measurement)"
warm_meas="$(json_field "$cache_dir/warm.json" measurement)"
if [ "$cold_hit" != "false" ] || [ "$warm_hit" != "true" ]; then
    echo "error: expected cold miss then disk hit," \
         "got cache_hit=$cold_hit then cache_hit=$warm_hit" >&2
    exit 1
fi
if [ -z "$cold_meas" ] || [ "$cold_meas" != "$warm_meas" ]; then
    echo "error: cache hit changed the launch measurement:" >&2
    echo "  cold: $cold_meas" >&2
    echo "  warm: $warm_meas" >&2
    exit 1
fi
echo "==> [cache] hit replays the cold measurement: $cold_meas"
echo "==> [cache] no cache/ code in the TCB inventory"
if grep -q '"cache/' "$tcb_dir/tcb-inventory.json"; then
    echo "error: cache module entered the TCB closure" >&2
    exit 1
fi

# 9b. Multi-tenant launch service: replay the example workload trace
#     through sevf_serve, validate the metrics export with the serving
#     gate plus both doc-drift gates (the per-tenant families must be
#     documented like everything else), and keep the whole service
#     layer outside the root of trust — like the cache, a scheduler
#     bug can deny service but never change what a guest owner
#     attests.
service_dir="$root/build-ci-werror/service-ci"
rm -rf "$service_dir"
mkdir -p "$service_dir"
echo "==> [service] replay examples/service_trace.json"
"$root/build-ci-werror/tools/sevf_serve" \
    --trace "$root/examples/service_trace.json" \
    --workers 2 --time-scale 0.1 --json \
    --metrics-out "$service_dir/metrics.prom" \
    >"$service_dir/report.json"
echo "==> [service] per-tenant families + doc-drift gates"
"$root/build-ci-werror/tools/sevf_obscheck" \
    --metrics "$service_dir/metrics.prom" --service \
    --docs "$root/docs/OBSERVABILITY.md" \
    --reliability "$root/docs/RELIABILITY.md"
echo "==> [service] every trace event completed or was rejected typed"
if grep -q '"failed": *[1-9]' "$service_dir/report.json"; then
    echo "error: serve replay reported failed launches:" >&2
    cat "$service_dir/report.json" >&2
    exit 1
fi
echo "==> [service] no service/ code in the TCB inventory"
if grep -q '"service/' "$tcb_dir/tcb-inventory.json"; then
    echo "error: service module entered the TCB closure" >&2
    exit 1
fi

# 10. Chaos: the seeded fault sweep (65 fixed seeds x 5 strategies —
#     every run must end bit-identical to the fault-free boot or in a
#     typed error; chaos_test already ran under every matrix entry
#     above, this reruns it standalone so a chaos regression is named
#     in the CI log) plus an end-to-end injection smoke through the
#     CLI: a boot absorbing two transient PSP faults must report the
#     same measurement as the fault-free boot, and a malformed plan
#     must be rejected as a usage error.
echo "==> [chaos] seeded fault sweep (deterministic)"
(cd "$root/build-ci-werror" && ctest -R chaos_test --output-on-failure)
chaos_dir="$root/build-ci-werror/chaos-ci"
rm -rf "$chaos_dir"
mkdir -p "$chaos_dir"
echo "==> [chaos] CLI injection smoke: faulted boot replays the clean measurement"
"$boot" --strategy=severifast --mode=sev-snp --no-attest --json \
    >"$chaos_dir/clean.json"
for seed in 3 7 11; do
    "$boot" --strategy=severifast --mode=sev-snp --no-attest --json \
        --fault-plan "seed=$seed;psp:nth=2,count=2" \
        >"$chaos_dir/faulted-$seed.json"
    clean_meas="$(json_field "$chaos_dir/clean.json" measurement)"
    fault_meas="$(json_field "$chaos_dir/faulted-$seed.json" measurement)"
    if [ -z "$clean_meas" ] || [ "$clean_meas" != "$fault_meas" ]; then
        echo "error: injected PSP faults changed the measurement (seed $seed):" >&2
        echo "  clean:   $clean_meas" >&2
        echo "  faulted: $fault_meas" >&2
        exit 1
    fi
done
echo "==> [chaos] retried boots replay the clean measurement: $clean_meas"
echo "==> [chaos] malformed --fault-plan is a usage error"
if "$boot" --fault-plan "warp-core:p=0.5" >/dev/null 2>&1; then
    echo "error: malformed fault plan was accepted" >&2
    exit 1
fi

# 11. Docs presence: the operator documentation set must exist and be
#     reachable from the README (the obscheck gates above already
#     checked their content against the live exports).
echo "==> [docs] RELIABILITY.md + ARCHITECTURE.md exist and are linked"
for doc in RELIABILITY.md ARCHITECTURE.md; do
    if [ ! -f "$root/docs/$doc" ]; then
        echo "error: docs/$doc is missing" >&2
        exit 1
    fi
    if ! grep -q "$doc" "$root/README.md"; then
        echo "error: docs/$doc is not referenced from README.md" >&2
        exit 1
    fi
done

echo "==> CI green: hygiene + werror + asan,ubsan + taint-enforce + tsan" \
     "+ lint + tcb + thread-safety + model + bench + obs + cache" \
     "+ service + chaos + docs"
