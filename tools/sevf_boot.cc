/**
 * @file
 * sevf_boot: boot one microVM with any strategy/kernel/mode and print
 * either the human-readable timeline or a JSON launch report.
 *
 *   usage: sevf_boot [--strategy stock|qemu|direct|severifast|
 *                      severifast-vmlinux]
 *                    [--kernel lupine|aws|ubuntu] [--mode sev|sev-es|sev-snp]
 *                    [--vcpus N] [--scale 0..1] [--no-attest] [--kaslr]
 *                    [--share-key] [--json] [--seed N]
 */
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "core/launch.h"
#include "core/report.h"
#include "stats/table.h"
#include "workload/synthetic.h"

using namespace sevf;

namespace {

[[noreturn]] void
usage(const char *argv0)
{
    std::fprintf(
        stderr,
        "usage: %s [--strategy stock|qemu|direct|severifast|"
        "severifast-vmlinux]\n"
        "          [--kernel lupine|aws|ubuntu] [--mode sev|sev-es|sev-snp]\n"
        "          [--vcpus N] [--scale 0..1] [--no-attest] [--kaslr]\n"
        "          [--share-key] [--json] [--seed N]\n",
        argv0);
    std::exit(2);
}

} // namespace

int
main(int argc, char **argv)
{
    core::LaunchRequest request;
    core::StrategyKind kind = core::StrategyKind::kSeveriFastBz;
    bool json = false;

    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        auto next = [&]() -> const char * {
            if (i + 1 >= argc) {
                usage(argv[0]);
            }
            return argv[++i];
        };
        if (arg == "--strategy") {
            std::string v = next();
            if (v == "stock") {
                kind = core::StrategyKind::kStockFirecracker;
            } else if (v == "qemu") {
                kind = core::StrategyKind::kQemuOvmfSev;
            } else if (v == "direct") {
                kind = core::StrategyKind::kSevDirectBoot;
            } else if (v == "severifast") {
                kind = core::StrategyKind::kSeveriFastBz;
            } else if (v == "severifast-vmlinux") {
                kind = core::StrategyKind::kSeveriFastVmlinux;
            } else {
                usage(argv[0]);
            }
        } else if (arg == "--kernel") {
            std::string v = next();
            if (v == "lupine") {
                request.kernel = workload::KernelConfig::kLupine;
            } else if (v == "aws") {
                request.kernel = workload::KernelConfig::kAws;
            } else if (v == "ubuntu") {
                request.kernel = workload::KernelConfig::kUbuntu;
            } else {
                usage(argv[0]);
            }
        } else if (arg == "--mode") {
            std::string v = next();
            if (v == "sev") {
                request.sev_mode = memory::SevMode::kSev;
            } else if (v == "sev-es") {
                request.sev_mode = memory::SevMode::kSevEs;
            } else if (v == "sev-snp") {
                request.sev_mode = memory::SevMode::kSevSnp;
            } else {
                usage(argv[0]);
            }
        } else if (arg == "--vcpus") {
            request.vm.vcpus = static_cast<u32>(std::atoi(next()));
        } else if (arg == "--scale") {
            request.scale = std::atof(next());
        } else if (arg == "--seed") {
            request.seed = static_cast<u64>(std::atoll(next()));
        } else if (arg == "--no-attest") {
            request.attest = false;
        } else if (arg == "--kaslr") {
            request.guest_kaslr = true;
        } else if (arg == "--share-key") {
            request.share_platform_key = true;
        } else if (arg == "--json") {
            json = true;
        } else {
            usage(argv[0]);
        }
    }

    core::Platform platform;
    Result<core::LaunchResult> result =
        core::makeStrategy(kind)->launch(platform, request);
    if (!result.isOk()) {
        std::fprintf(stderr, "launch failed: %s\n",
                     result.status().toString().c_str());
        return 1;
    }

    if (json) {
        std::printf("%s\n", core::launchResultToJson(*result).c_str());
        return 0;
    }

    std::printf("%s\n", result->timeline.render().c_str());
    stats::Table phases({"phase", "time"});
    for (const std::string &phase : result->trace.phases()) {
        phases.addRow(
            {phase, stats::fmtMs(result->trace.phaseTotal(phase).toMsF())});
    }
    phases.print();
    std::printf("boot: %s  total: %s  attested: %s\n",
                result->bootTime().toString().c_str(),
                result->totalTime().toString().c_str(),
                result->attested ? "yes" : "no");
    return 0;
}
