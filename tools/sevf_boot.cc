/**
 * @file
 * sevf_boot: boot one microVM with any strategy/kernel/mode and print
 * either the human-readable timeline or a JSON launch report. With
 * --trace-out/--metrics-out the launch runs with the observability
 * layer enabled and exports a Chrome trace-event file and a metrics
 * snapshot (docs/OBSERVABILITY.md).
 *
 * Run with --help for the full flag list (rendered from the same table
 * the parser uses, see sevf_boot_cli.h).
 */
#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

#include "cache/template_cache.h"
#include "core/launch.h"
#include "core/report.h"
#include "fault/fault.h"
#include "obs/export.h"
#include "obs/metrics.h"
#include "obs/span.h"
#include "sim/des.h"
#include "stats/table.h"
#include "tools/sevf_boot_cli.h"

using namespace sevf;

int
main(int argc, char **argv)
{
    std::vector<std::string> args(argv + 1, argv + argc);
    Result<tools::BootOptions> parsed = tools::parseBootArgs(args);
    if (!parsed.isOk()) {
        std::fprintf(stderr, "%s\n\n%s", parsed.status().message().c_str(),
                     tools::usageText(argv[0]).c_str());
        return 2;
    }
    tools::BootOptions opts = parsed.take();
    if (opts.help) {
        std::printf("%s", tools::usageText(argv[0]).c_str());
        return 0;
    }

    if (!opts.metrics_out.empty()) {
        obs::setMetricsEnabled(true);
    }
    if (!opts.trace_out.empty()) {
        obs::setMetricsEnabled(true); // traces embed counter samples
        obs::setTracingEnabled(true);
    }

    if (!opts.fault_plan.empty()) {
        Result<fault::FaultPlan> plan =
            fault::FaultPlan::parse(opts.fault_plan);
        if (!plan.isOk()) {
            std::fprintf(stderr, "--fault-plan: %s\n",
                         plan.status().message().c_str());
            return 2;
        }
        fault::FaultInjector::instance().arm(plan.take());
    }

    core::Platform platform;
    platform.psp().setRetryPolicy(opts.retry);
    if (opts.cache_bytes != 0) {
        platform.templateCache().setCapacityBytes(opts.cache_bytes);
    }
    if (!opts.cache_dir.empty()) {
        std::error_code ec;
        std::filesystem::create_directories(opts.cache_dir, ec);
        if (ec) {
            std::fprintf(stderr, "cannot create --cache-dir %s: %s\n",
                         opts.cache_dir.c_str(), ec.message().c_str());
            return 1;
        }
        platform.templateCache().setDiskDir(opts.cache_dir);
    }
    Result<core::LaunchResult> result =
        core::makeStrategy(opts.strategy)->launch(platform, opts.request);
    if (!result.isOk()) {
        std::fprintf(stderr, "launch failed: %s\n",
                     result.status().toString().c_str());
        return 1;
    }

    if (obs::metricsEnabled() || obs::tracingEnabled()) {
        // Replay the trace through the shared-PSP scheduler: this is
        // what derives the PSP queue-depth counter track and the
        // sevf_psp_queue_depth / sevf_psp_wait_ns metrics.
        sim::replayConcurrent({result->trace});
    }
    if (!opts.trace_out.empty()) {
        Status st = obs::writeTraceFile(opts.trace_out);
        if (!st.isOk()) {
            std::fprintf(stderr, "trace export failed: %s\n",
                         st.toString().c_str());
            return 1;
        }
    }
    if (!opts.metrics_out.empty()) {
        Status st = obs::writeMetricsFile(opts.metrics_out);
        if (!st.isOk()) {
            std::fprintf(stderr, "metrics export failed: %s\n",
                         st.toString().c_str());
            return 1;
        }
    }

    if (opts.cache_stats) {
        // stderr so --json keeps a clean machine-readable stdout.
        cache::TemplateCache::Stats cs = platform.templateCache().stats();
        std::fprintf(stderr, "%s\n", tools::renderCacheStats(cs).c_str());
    }

    if (opts.json) {
        std::printf("%s\n", core::launchResultToJson(*result).c_str());
        return 0;
    }

    std::printf("%s\n", result->timeline.render().c_str());
    stats::Table phases({"phase", "time"});
    for (const std::string &phase : result->trace.phases()) {
        phases.addRow(
            {phase, stats::fmtMs(result->trace.phaseTotal(phase).toMsF())});
    }
    phases.print();
    std::printf("boot: %s  total: %s  attested: %s\n",
                result->bootTime().toString().c_str(),
                result->totalTime().toString().c_str(),
                result->attested ? "yes" : "no");
    return 0;
}
