/**
 * @file
 * sevf_boot's command line, as data.
 *
 * The flag table is the single source of truth: the binary parses from
 * it, usageText() renders --help from it, and tests/cli_test.cc asserts
 * the two can never drift apart again (the --help text went stale once
 * already when --threads/--hugepages/--no-oob-hash/--kernel-codec/
 * --initrd-codec/--verifier-size grew in without it). Header-only so
 * the test links the exact code the tool runs.
 */
#ifndef SEVF_TOOLS_SEVF_BOOT_CLI_H_
#define SEVF_TOOLS_SEVF_BOOT_CLI_H_

#include <limits>
#include <string>
#include <vector>

#include "base/status.h"
#include "tools/sevf_cli_num.h"
#include "cache/template_cache.h"
#include "compress/codec.h"
#include "core/launch.h"
#include "fault/retry.h"
#include "memory/sev_mode.h"
#include "workload/kernel_spec.h"

namespace sevf::tools {

/** One sevf_boot flag: name, whether it takes a value, help text. */
struct BootFlag {
    const char *name;       ///< including the leading "--"
    const char *value_hint; ///< nullptr for boolean switches
    const char *help;
};

/** Every flag sevf_boot accepts, in --help display order. */
inline const std::vector<BootFlag> &
bootFlags()
{
    static const std::vector<BootFlag> flags = {
        {"--strategy", "stock|qemu|direct|severifast|severifast-vmlinux",
         "boot strategy (default severifast)"},
        {"--kernel", "lupine|aws|ubuntu", "guest kernel config (default aws)"},
        {"--mode", "sev|sev-es|sev-snp", "SEV generation (default sev-snp)"},
        {"--vcpus", "N", "guest vCPU count"},
        {"--scale", "0..1", "artifact scale factor (default 1.0)"},
        {"--seed", "N", "launch determinism seed (default 1)"},
        {"--threads", "N",
         "host worker threads for the parallel launch pipeline "
         "(0 = platform knob, 1 = serial)"},
        {"--no-hugepages", nullptr,
         "back guest memory with 4 KiB pages only (re-adds the "
         "pvalidate cost hugepages hide)"},
        {"--no-attest", nullptr, "skip remote attestation after boot"},
        {"--no-oob-hash", nullptr,
         "disable out-of-band hashing (re-adds VMM hash time)"},
        {"--kernel-codec", "none|lz4|lzss|gzip",
         "bzImage payload codec (default lz4)"},
        {"--initrd-codec", "none|lz4|lzss|gzip",
         "initrd codec (default none)"},
        {"--verifier-size", "BYTES",
         "override the boot-verifier binary size (0 = 13 KiB default)"},
        {"--kaslr", nullptr, "guest-side KASLR in the bootstrap loader"},
        {"--share-key", nullptr,
         "launch with the shared platform key (weakens trust model)"},
        {"--no-cache", nullptr,
         "bypass the launch-template cache (always boot cold)"},
        {"--cache-dir", "DIR",
         "persist launch templates under DIR (created if missing) so "
         "cache hits survive across runs"},
        {"--cache-bytes", "BYTES",
         "in-memory template cache budget (0 = default 1 GiB)"},
        {"--cache-stats", nullptr,
         "print template-cache hit/miss/eviction counters after boot"},
        {"--fault-plan", "SPEC",
         "arm deterministic fault injection, e.g. "
         "\"seed=7;psp:p=0.25;disk-read:nth=2\" (sites: psp, disk-read, "
         "disk-write, dram-mmap, admission, service-enqueue)"},
        {"--retry-max", "N",
         "PSP transient-error retry budget: total attempts per command "
         "(default 3, 1 = no retry)"},
        {"--retry-base-us", "N",
         "base backoff before the first retry, microseconds, doubling "
         "per attempt (default 100)"},
        {"--retry-jitter", "0..1",
         "backoff jitter fraction (default 0.1)"},
        {"--json", nullptr, "emit a machine-readable launch report"},
        {"--trace-out", "FILE",
         "record spans/steps and write a Chrome trace-event JSON file "
         "(open in Perfetto)"},
        {"--metrics-out", "FILE",
         "record metrics and write them (.prom/.txt = Prometheus text, "
         ".json = JSON snapshot)"},
        {"--help", nullptr, "show this help"},
    };
    return flags;
}

/** The --help text, rendered from bootFlags(). */
inline std::string
usageText(const char *argv0)
{
    std::string out = "usage: ";
    out += argv0;
    out += " [flags]\n\nBoot one microVM and print the timeline, a JSON "
           "report, and optionally\nobservability exports.\n\nflags:\n";
    for (const BootFlag &f : bootFlags()) {
        std::string head = "  ";
        head += f.name;
        if (f.value_hint != nullptr) {
            head += " ";
            head += f.value_hint;
        }
        out += head;
        if (head.size() < 28) {
            out += std::string(28 - head.size(), ' ');
        } else {
            out += "\n" + std::string(28, ' ');
        }
        out += f.help;
        out += "\n";
    }
    return out;
}

/** Everything the parsed command line selects. */
struct BootOptions {
    core::LaunchRequest request;
    core::StrategyKind strategy = core::StrategyKind::kSeveriFastBz;
    bool json = false;
    bool help = false;
    std::string trace_out;
    std::string metrics_out;
    std::string cache_dir;   ///< empty = in-memory cache only
    u64 cache_bytes = 0;     ///< 0 = keep the cache's default budget
    bool cache_stats = false;
    /** Raw --fault-plan spec; parsed (and validated) at arm time so a
     *  malformed plan is reported as a clean usage error in main. */
    std::string fault_plan;
    fault::RetryPolicy retry; ///< built from the --retry-* flags
};

namespace detail {

inline Result<compress::CodecKind>
parseCodec(const std::string &v)
{
    if (v == "none") {
        return compress::CodecKind::kNone;
    }
    if (v == "lz4") {
        return compress::CodecKind::kLz4;
    }
    if (v == "lzss") {
        return compress::CodecKind::kLzss;
    }
    if (v == "gzip") {
        return compress::CodecKind::kGzipLite;
    }
    return errInvalidArgument("unknown codec: " + v);
}

} // namespace detail

/**
 * The --cache-stats line, as one string (no trailing newline). Kept
 * here so cli_test.cc asserts the exact fields operators see —
 * including the disk-tier error/quarantine counters that distinguish a
 * dying disk from a cold cache.
 */
inline std::string
renderCacheStats(const cache::TemplateCache::Stats &s)
{
    std::string out = "cache: hits=" + std::to_string(s.hits);
    out += " misses=" + std::to_string(s.misses);
    out += " inserts=" + std::to_string(s.inserts);
    out += " evictions=" + std::to_string(s.evictions);
    out += " entries=" + std::to_string(s.entries);
    out += " bytes=" + std::to_string(s.bytes);
    out += " disk_errors=" + std::to_string(s.disk_errors);
    out += " quarantined=" + std::to_string(s.quarantined);
    out += " poisoned=" + std::to_string(s.poisoned);
    return out;
}

/**
 * Parse @p args (argv[1..]). Accepts both "--flag value" and
 * "--flag=value". Unknown flags, missing values, and bad enum values
 * are kInvalidArgument errors naming the offender; the caller prints
 * usageText() and exits.
 */
inline Result<BootOptions>
parseBootArgs(const std::vector<std::string> &args)
{
    BootOptions opts;
    for (std::size_t i = 0; i < args.size(); ++i) {
        std::string arg = args[i];
        std::string value;
        bool has_inline_value = false;
        std::size_t eq = arg.find('=');
        if (eq != std::string::npos && arg.rfind("--", 0) == 0) {
            value = arg.substr(eq + 1);
            arg = arg.substr(0, eq);
            has_inline_value = true;
        }

        const BootFlag *flag = nullptr;
        for (const BootFlag &f : bootFlags()) {
            if (arg == f.name) {
                flag = &f;
                break;
            }
        }
        if (flag == nullptr) {
            return errInvalidArgument("unknown flag: " + arg);
        }
        bool takes_value = flag->value_hint != nullptr;
        if (!takes_value && has_inline_value) {
            return errInvalidArgument(arg + " takes no value");
        }
        if (takes_value && !has_inline_value) {
            if (i + 1 >= args.size()) {
                return errInvalidArgument(arg + " needs a value");
            }
            value = args[++i];
        }

        if (arg == "--strategy") {
            if (value == "stock") {
                opts.strategy = core::StrategyKind::kStockFirecracker;
            } else if (value == "qemu") {
                opts.strategy = core::StrategyKind::kQemuOvmfSev;
            } else if (value == "direct") {
                opts.strategy = core::StrategyKind::kSevDirectBoot;
            } else if (value == "severifast") {
                opts.strategy = core::StrategyKind::kSeveriFastBz;
            } else if (value == "severifast-vmlinux") {
                opts.strategy = core::StrategyKind::kSeveriFastVmlinux;
            } else {
                return errInvalidArgument("unknown strategy: " + value);
            }
        } else if (arg == "--kernel") {
            if (value == "lupine") {
                opts.request.kernel = workload::KernelConfig::kLupine;
            } else if (value == "aws") {
                opts.request.kernel = workload::KernelConfig::kAws;
            } else if (value == "ubuntu") {
                opts.request.kernel = workload::KernelConfig::kUbuntu;
            } else {
                return errInvalidArgument("unknown kernel: " + value);
            }
        } else if (arg == "--mode") {
            if (value == "sev") {
                opts.request.sev_mode = memory::SevMode::kSev;
            } else if (value == "sev-es") {
                opts.request.sev_mode = memory::SevMode::kSevEs;
            } else if (value == "sev-snp") {
                opts.request.sev_mode = memory::SevMode::kSevSnp;
            } else {
                return errInvalidArgument("unknown mode: " + value);
            }
        } else if (arg == "--vcpus") {
            SEVF_ASSIGN_OR_RETURN(opts.request.vm.vcpus,
                                  parseU32(arg, value));
        } else if (arg == "--scale") {
            SEVF_ASSIGN_OR_RETURN(opts.request.scale,
                                  parseFraction(arg, value, 1.0));
        } else if (arg == "--seed") {
            SEVF_ASSIGN_OR_RETURN(opts.request.seed,
                                  parseU64(arg, value));
        } else if (arg == "--threads") {
            SEVF_ASSIGN_OR_RETURN(opts.request.host_threads,
                                  parseU32(arg, value));
        } else if (arg == "--no-hugepages") {
            opts.request.vm.hugepages = false;
        } else if (arg == "--no-attest") {
            opts.request.attest = false;
        } else if (arg == "--no-oob-hash") {
            opts.request.out_of_band_hashing = false;
        } else if (arg == "--kernel-codec") {
            SEVF_ASSIGN_OR_RETURN(opts.request.kernel_codec,
                                  detail::parseCodec(value));
        } else if (arg == "--initrd-codec") {
            SEVF_ASSIGN_OR_RETURN(opts.request.initrd_codec,
                                  detail::parseCodec(value));
        } else if (arg == "--verifier-size") {
            SEVF_ASSIGN_OR_RETURN(opts.request.verifier_size,
                                  parseU64(arg, value));
        } else if (arg == "--kaslr") {
            opts.request.guest_kaslr = true;
        } else if (arg == "--share-key") {
            opts.request.share_platform_key = true;
        } else if (arg == "--no-cache") {
            opts.request.use_template_cache = false;
        } else if (arg == "--cache-dir") {
            opts.cache_dir = value;
        } else if (arg == "--cache-bytes") {
            SEVF_ASSIGN_OR_RETURN(opts.cache_bytes,
                                  parseU64(arg, value));
        } else if (arg == "--cache-stats") {
            opts.cache_stats = true;
        } else if (arg == "--fault-plan") {
            opts.fault_plan = value;
        } else if (arg == "--retry-max") {
            SEVF_ASSIGN_OR_RETURN(opts.retry.max_attempts,
                                  parseU32(arg, value));
        } else if (arg == "--retry-base-us") {
            SEVF_ASSIGN_OR_RETURN(u64 base_us, parseU64(arg, value));
            if (base_us > std::numeric_limits<u64>::max() / 1000) {
                return errInvalidArgument(arg + " out of range: \"" +
                                          value + "\"");
            }
            opts.retry.base_delay_ns = base_us * 1000;
        } else if (arg == "--retry-jitter") {
            SEVF_ASSIGN_OR_RETURN(opts.retry.jitter,
                                  parseFraction(arg, value, 1.0));
        } else if (arg == "--json") {
            opts.json = true;
        } else if (arg == "--trace-out") {
            opts.trace_out = value;
        } else if (arg == "--metrics-out") {
            opts.metrics_out = value;
        } else if (arg == "--help") {
            opts.help = true;
        }
    }
    return opts;
}

} // namespace sevf::tools

#endif // SEVF_TOOLS_SEVF_BOOT_CLI_H_
