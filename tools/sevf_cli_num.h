/**
 * @file
 * Strict numeric parsing for tool command lines.
 *
 * std::atoi/atoll silently return 0 on garbage ("--threads=abc" used to
 * mean --threads=0, i.e. "use the platform knob") and wrap negatives
 * through the unsigned casts. These helpers reject non-numeric input,
 * signs, embedded whitespace, trailing garbage, and out-of-range values
 * with a kInvalidArgument naming the flag, so main() prints a usage
 * error instead of booting with a misparsed knob. Header-only so
 * cli_test.cc links the exact code the tools run.
 */
#ifndef SEVF_TOOLS_SEVF_CLI_NUM_H_
#define SEVF_TOOLS_SEVF_CLI_NUM_H_

#include <cctype>
#include <cerrno>
#include <cmath>
#include <cstdlib>
#include <limits>
#include <string>

#include "base/status.h"
#include "base/types.h"

namespace sevf::tools {

/**
 * Parse an unsigned decimal integer. Rejects empty strings, any
 * non-digit character (including '+'/'-' signs and whitespace, which
 * strtoull would accept), and values above 2^64-1.
 */
inline Result<u64>
parseU64(const std::string &flag, const std::string &value)
{
    if (value.empty()) {
        return errInvalidArgument(flag + " needs a number, got \"\"");
    }
    for (char c : value) {
        if (c < '0' || c > '9') {
            return errInvalidArgument(flag + " expects an unsigned "
                                      "integer, got \"" + value + "\"");
        }
    }
    errno = 0;
    char *end = nullptr;
    unsigned long long parsed = std::strtoull(value.c_str(), &end, 10);
    if (errno == ERANGE || end != value.c_str() + value.size()) {
        return errInvalidArgument(flag + " out of range: \"" + value +
                                  "\"");
    }
    return static_cast<u64>(parsed);
}

/** parseU64 restricted to the u32 range. */
inline Result<u32>
parseU32(const std::string &flag, const std::string &value)
{
    SEVF_ASSIGN_OR_RETURN(u64 wide, parseU64(flag, value));
    if (wide > std::numeric_limits<u32>::max()) {
        return errInvalidArgument(flag + " out of range: \"" + value +
                                  "\"");
    }
    return static_cast<u32>(wide);
}

/**
 * Parse a non-negative finite decimal (fraction-style flags such as
 * --scale and --retry-jitter). Rejects non-numeric input, trailing
 * garbage, negatives, inf/nan, and anything above @p max.
 */
inline Result<double>
parseFraction(const std::string &flag, const std::string &value,
              double max)
{
    if (value.empty() || value.front() == '+' || value.front() == '-' ||
        std::isspace(static_cast<unsigned char>(value.front())) != 0) {
        return errInvalidArgument(flag + " expects a number in [0, " +
                                  std::to_string(max) + "], got \"" +
                                  value + "\"");
    }
    errno = 0;
    char *end = nullptr;
    double parsed = std::strtod(value.c_str(), &end);
    if (errno == ERANGE || end != value.c_str() + value.size() ||
        !std::isfinite(parsed) || parsed < 0.0 || parsed > max) {
        return errInvalidArgument(flag + " expects a number in [0, " +
                                  std::to_string(max) + "], got \"" +
                                  value + "\"");
    }
    return parsed;
}

} // namespace sevf::tools

#endif // SEVF_TOOLS_SEVF_CLI_NUM_H_
