/**
 * @file
 * The expected-measurement tool the paper ships with SEVeriFast (§4.2):
 * given the VM configuration, compute the SHA-256 launch digest the
 * guest owner should expect in attestation reports - without touching
 * a PSP. Supports every knob the boot strategies expose; --verify
 * cross-checks the prediction against a real launch.
 *
 *   usage: sevf_digest [--kernel lupine|aws|ubuntu] [--vcpus N]
 *                      [--mode sev|sev-es|sev-snp] [--scale 0..1]
 *                      [--verifier-size BYTES] [--initrd-codec none|lz4]
 *                      [--verify]
 */
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "attest/expected_measurement.h"
#include "base/bytes.h"
#include "core/launch.h"
#include "stats/table.h"
#include "verifier/verifier_binary.h"
#include "vmm/layout.h"
#include "vmm/microvm.h"
#include "workload/synthetic.h"

using namespace sevf;
namespace layout = vmm::layout;

namespace {

[[noreturn]] void
usage(const char *argv0)
{
    std::fprintf(stderr,
                 "usage: %s [--kernel lupine|aws|ubuntu] [--vcpus N]\n"
                 "          [--mode sev|sev-es|sev-snp] [--scale 0..1]\n"
                 "          [--verifier-size BYTES]\n"
                 "          [--initrd-codec none|lz4] [--verify]\n",
                 argv0);
    std::exit(2);
}

} // namespace

int
main(int argc, char **argv)
{
    core::LaunchRequest request;
    bool verify = false;

    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        auto next = [&]() -> const char * {
            if (i + 1 >= argc) {
                usage(argv[0]);
            }
            return argv[++i];
        };
        if (arg == "--kernel") {
            std::string k = next();
            if (k == "lupine") {
                request.kernel = workload::KernelConfig::kLupine;
            } else if (k == "aws") {
                request.kernel = workload::KernelConfig::kAws;
            } else if (k == "ubuntu") {
                request.kernel = workload::KernelConfig::kUbuntu;
            } else {
                usage(argv[0]);
            }
        } else if (arg == "--vcpus") {
            request.vm.vcpus = static_cast<u32>(std::atoi(next()));
        } else if (arg == "--mode") {
            std::string m = next();
            if (m == "sev") {
                request.sev_mode = memory::SevMode::kSev;
            } else if (m == "sev-es") {
                request.sev_mode = memory::SevMode::kSevEs;
            } else if (m == "sev-snp") {
                request.sev_mode = memory::SevMode::kSevSnp;
            } else {
                usage(argv[0]);
            }
        } else if (arg == "--scale") {
            request.scale = std::atof(next());
        } else if (arg == "--verifier-size") {
            request.verifier_size =
                static_cast<u64>(std::atoll(next()));
        } else if (arg == "--initrd-codec") {
            std::string c = next();
            if (c == "none") {
                request.initrd_codec = compress::CodecKind::kNone;
            } else if (c == "lz4") {
                request.initrd_codec = compress::CodecKind::kLz4;
            } else {
                usage(argv[0]);
            }
        } else if (arg == "--verify") {
            verify = true;
        } else {
            usage(argv[0]);
        }
    }

    // Rebuild exactly what the VMM stages (all offline, no PSP).
    const workload::KernelArtifacts &art =
        workload::cachedKernelArtifacts(request.kernel, request.scale);
    const ByteVec &initrd_raw = workload::cachedInitrd(request.scale);
    ByteVec initrd_storage;
    ByteSpan staged_initrd = initrd_raw;
    if (request.initrd_codec != compress::CodecKind::kNone) {
        initrd_storage =
            compress::codecFor(request.initrd_codec).compress(initrd_raw);
        staged_initrd = initrd_storage;
    }

    verifier::BootHashes hashes = verifier::BootHashes::compute(
        art.bzimage, staged_initrd, std::nullopt);

    ByteVec verifier_bin =
        request.verifier_size == 0
            ? verifier::verifierBinary()
            : verifier::bloatedVerifierBinary(request.verifier_size);

    // A scratch VM (no ASID, no PSP) to materialize the staged regions.
    vmm::MicroVm vm(request.vm, 0x100000000ull, /*asid=*/0);
    Gpa initrd_final = request.initrd_codec == compress::CodecKind::kNone
                           ? layout::kInitrdPrivateGpa
                           : layout::kInitrdDecompressedGpa;
    Result<vmm::BootStructs> structs =
        vm.stageBootStructs(initrd_final, initrd_raw.size(), 0);
    if (!structs.isOk()) {
        std::fprintf(stderr, "error: %s\n",
                     structs.status().toString().c_str());
        return 1;
    }
    Result<std::vector<attest::PreEncryptedRegion>> plan =
        vm.buildPreEncryptionPlan(verifier_bin, hashes, *structs);
    if (!plan.isOk()) {
        std::fprintf(stderr, "error: %s\n",
                     plan.status().toString().c_str());
        return 1;
    }

    std::optional<attest::VmsaInfo> vmsa;
    if (memory::hasEncryptedState(request.sev_mode)) {
        vmsa = attest::VmsaInfo{request.vm.vcpus, request.vm.sev_policy,
                                layout::kVmsaGpa};
    }
    crypto::Sha256Digest expected =
        attest::expectedMeasurement(*plan, vmsa);

    stats::Table table({"region", "gpa", "bytes"});
    char gpa_buf[32];
    for (const attest::PreEncryptedRegion &r : *plan) {
        std::snprintf(gpa_buf, sizeof(gpa_buf), "0x%llx",
                      static_cast<unsigned long long>(r.gpa));
        table.addRow({r.name, gpa_buf,
                      std::to_string(r.bytes.size())});
    }
    if (vmsa) {
        std::snprintf(gpa_buf, sizeof(gpa_buf), "0x%llx",
                      static_cast<unsigned long long>(vmsa->base_gpa));
        table.addRow({"vmsa x" + std::to_string(vmsa->vcpus), gpa_buf,
                      std::to_string(vmsa->vcpus * kPageSize)});
    }
    table.print();
    std::printf("expected launch digest (%s, %u vCPU):\n  %s\n",
                memory::sevModeName(request.sev_mode), request.vm.vcpus,
                toHex(ByteSpan(expected.data(), expected.size())).c_str());

    if (verify) {
        core::Platform platform;
        Result<core::LaunchResult> run =
            core::makeStrategy(core::StrategyKind::kSeveriFastBz)
                ->launch(platform, request);
        if (!run.isOk()) {
            std::fprintf(stderr, "verify launch failed: %s\n",
                         run.status().toString().c_str());
            return 1;
        }
        bool match = run->measurement == expected;
        std::printf("live launch digest:\n  %s\n  -> %s\n",
                    toHex(ByteSpan(run->measurement.data(),
                                   run->measurement.size()))
                        .c_str(),
                    match ? "MATCH" : "MISMATCH");
        return match ? 0 : 1;
    }
    return 0;
}
