/**
 * @file
 * sevf_lint: the project's custom invariant checker (CLI).
 *
 * All analysis lives in tools/sevf_lint_engine.h; this file is argument
 * parsing and reporting. The engine walks a source tree (default: src/)
 * and enforces the conventions the compiler cannot:
 *
 *   header-guard      .h guards are SEVF_<DIR>_<FILE>_H_
 *   include-path      quoted includes are project-relative ("base/status.h",
 *                     never "../x.h" or "status.h") and name real files
 *   banned-construct  no throw, rand(), raw new[], and no std::cout
 *                     outside stats/ (tools/ is not linted) — the boot
 *                     path is exception-free and deterministic
 *   cc-h-pairing      a .cc with a same-named sibling .h includes that
 *                     header first, so every interface header is
 *                     self-contained-compiled at least once
 *   unguarded-result  heuristic: a variable declared Result<...> must be
 *                     guarded (isOk()/valueOr()/errorOr()) in the same
 *                     function before .value()/.take()
 *   secret-flow       intraprocedural dataflow: a variable assigned from
 *                     a secret-source function (dhSharedKey, open,
 *                     keyFor, ... — extend with --secret-sources) is
 *                     tracked through same-function assignments; flowing
 *                     it into a logging/serialization sink (inform,
 *                     record, recordData, addItem, toHex, render, ...)
 *                     without an intervening declassify() is flagged
 *   interproc-secret-flow  the same dataflow across function boundaries:
 *                     per-function summaries (secret-returning callees,
 *                     sink-forwarding parameters) are computed to a
 *                     fixed point over the cross-TU call graph, so a
 *                     secret laundered through a helper still trips
 *   guarded-by        lockset analysis over SEVF_GUARDED_BY /
 *                     SEVF_REQUIRES annotations (base/thread_annotations.h):
 *                     a guarded field accessed, or an SEVF_REQUIRES
 *                     function called, without the guard held is flagged
 *   lock-order        the global lock-acquisition-order graph (direct +
 *                     transitive-through-calls) is checked against
 *                     tools/lock-order.txt ('order A B' / 'exclusive A B')
 *                     and searched for ordering cycles
 *   unused-suppression  every "sevf_lint: allow(...)" comment must
 *                     actually suppress a violation, and every
 *                     SEVF_TCB_EXEMPT must be reached by the TCB
 *                     closure; stale ones rot into blanket permission
 *                     and are errors themselves
 *   tcb-reach / tcb-budget / tcb-construct / tcb-recursion
 *                     the root-of-trust audit (base/trust_zones.h):
 *                     the transitive callee closure of every SEVF_TCB
 *                     entry point is inventoried per module and checked
 *                     against tools/tcb-budget.txt - size budget,
 *                     banned modules (the verifier must never reach
 *                     compress/gzip_lite or compress/huffman), banned
 *                     APIs/dynamic allocation, call-graph cycles
 *   untrusted-bounds  inside SEVF_UNTRUSTED_INPUT parsers (bzImage/
 *                     ELF/cpio headers, LZ4 frames, fw_cfg), offset/
 *                     length arithmetic used in subscripts, subspan()
 *                     or copies needs a preceding bounds-check idiom
 *                     or an audited suppression
 *
 * Suppress a finding with a trailing or preceding comment:
 *
 *     do_scary_thing(); // sevf_lint: allow(banned-construct)
 *
 * Usage:
 *     sevf_lint --root <dir> [--secret-sources <file>]
 *               [--lock-order <file>] [--tcb-budget <file>]
 *               [--jobs <n>] [--stats] [--format=json]
 *               [--tcb] [--tcb-out <file>]
 *                                  lint a tree, exit 1 on violations;
 *                                  --secret-sources adds one source
 *                                  function name per line ('#' comments);
 *                                  --lock-order loads the acquisition-
 *                                  order spec; --tcb-budget loads the
 *                                  TCB budget (default: <root>/
 *                                  tcb-budget.txt when present);
 *                                  --jobs 0 = hardware; --stats prints
 *                                  per-pass wall time; --format=json
 *                                  emits the machine-readable report
 *                                  (violations + TCB inventory);
 *                                  --tcb prints the per-module TCB
 *                                  inventory JSON; --tcb-out writes it
 *                                  to a file (for the CI baseline diff)
 *     sevf_lint --selftest <dir>   run the fixture self-test: each
 *                                  subdirectory is named for the rule it
 *                                  must trip ("suppressed" must be clean)
 *
 * Registered as ctests so every test run is also a lint run.
 */
#include <iostream>

#include "tools/sevf_lint_engine.h"

namespace {

using sevf::lint::LockOrderSpec;
using sevf::lint::Options;
using sevf::lint::RunResult;
using sevf::lint::Violation;

namespace fs = std::filesystem;

/** One secret-source function name per line; '#' starts a comment. */
std::optional<std::vector<std::string>>
loadSecretSources(const fs::path &path)
{
    std::ifstream in(path);
    if (!in) {
        return std::nullopt;
    }
    std::vector<std::string> sources;
    std::string line;
    while (std::getline(in, line)) {
        size_t hash = line.find('#');
        if (hash != std::string::npos) {
            line.erase(hash);
        }
        std::istringstream is(line);
        std::string name;
        if (is >> name) {
            sources.push_back(name);
        }
    }
    return sources;
}

void
printStats(const RunResult &result)
{
    long long total = 0;
    for (const auto &s : result.stats) {
        total += s.ns;
    }
    std::cout << "pass timings:\n";
    for (const auto &s : result.stats) {
        std::cout << "  " << s.name << ": " << s.ns / 1000000.0 << " ms\n";
    }
    std::cout << "  total: " << total / 1000000.0 << " ms\n";
}

struct OutputOptions {
    bool stats = false;
    bool json = false;     //!< --format=json: machine-readable report
    bool print_tcb = false; //!< --tcb: inventory JSON on stdout
    std::string tcb_out;   //!< --tcb-out: inventory JSON to a file
};

int
lintTree(Options opts, const OutputOptions &out)
{
    if (!fs::is_directory(opts.root)) {
        std::cerr << "sevf_lint: not a directory: " << opts.root << "\n";
        return 2;
    }
    RunResult result = sevf::lint::runLint(opts);
    if (out.json) {
        std::cout << sevf::lint::renderReportJson(result);
    } else {
        for (const Violation &v : result.violations) {
            std::cout << v.file << ":" << v.line << ": [" << v.rule << "] "
                      << v.message << "\n";
        }
    }
    if (out.print_tcb && !out.json) {
        std::cout << sevf::lint::renderTcbJson(result.tcb) << "\n";
    }
    if (!out.tcb_out.empty()) {
        std::ofstream f(out.tcb_out);
        if (!f) {
            std::cerr << "sevf_lint: could not write " << out.tcb_out
                      << "\n";
            return 2;
        }
        f << sevf::lint::renderTcbJson(result.tcb) << "\n";
    }
    if (out.stats) {
        printStats(result);
    }
    if (!result.violations.empty()) {
        if (!out.json) {
            std::cout << result.violations.size()
                      << " violation(s) under " << opts.root << "\n";
        }
        return 1;
    }
    if (!out.json && !out.print_tcb) {
        std::cout << "sevf_lint: clean (" << opts.root.generic_string()
                  << ")\n";
    }
    return 0;
}

/**
 * Fixture self-test: every subdirectory of @p fixture_root is named for
 * the rule its files must trip; the special directory "suppressed" holds
 * rule-breaking code with suppression comments and must lint clean.
 * Fixtures run single-threaded with no lock-order spec, so cycle
 * detection (not spec matching) is what the lock-order fixture
 * exercises.
 */
int
selfTest(const fs::path &fixture_root)
{
    if (!fs::is_directory(fixture_root)) {
        std::cerr << "sevf_lint: fixture root missing: " << fixture_root
                  << "\n";
        return 2;
    }
    int failures = 0;
    int cases = 0;
    for (const auto &entry : fs::directory_iterator(fixture_root)) {
        if (!entry.is_directory()) {
            continue;
        }
        ++cases;
        std::string rule = entry.path().filename().string();
        Options opts;
        opts.root = entry.path();
        opts.jobs = 1;
        std::vector<Violation> violations =
            sevf::lint::runLint(opts).violations;
        if (rule == "suppressed") {
            if (!violations.empty()) {
                std::cerr << "FAIL " << rule << ": expected clean, got "
                          << violations.size() << " violation(s); first: ["
                          << violations.front().rule << "] "
                          << violations.front().message << "\n";
                ++failures;
            } else {
                std::cout << "ok   " << rule << " (clean as expected)\n";
            }
            continue;
        }
        bool hit = std::any_of(
            violations.begin(), violations.end(),
            [&](const Violation &v) { return v.rule == rule; });
        if (!hit) {
            std::cerr << "FAIL " << rule << ": fixture did not trip the '"
                      << rule << "' rule\n";
            for (const Violation &v : violations) {
                std::cerr << "  got " << v.file << ":" << v.line << ": ["
                          << v.rule << "] " << v.message << "\n";
            }
            ++failures;
        } else {
            std::cout << "ok   " << rule << "\n";
        }
    }
    if (cases == 0) {
        std::cerr << "sevf_lint: no fixture cases found\n";
        return 2;
    }
    std::cout << (cases - failures) << "/" << cases
              << " fixture cases passed\n";
    return failures == 0 ? 0 : 1;
}

} // namespace

int
main(int argc, char **argv)
{
    std::vector<std::string> args(argv + 1, argv + argc);
    std::string root;
    std::string selftest_root;
    OutputOptions out;
    Options opts;
    for (size_t i = 0; i < args.size(); ++i) {
        if (args[i] == "--root" && i + 1 < args.size()) {
            root = args[++i];
        } else if (args[i] == "--selftest" && i + 1 < args.size()) {
            selftest_root = args[++i];
        } else if (args[i] == "--secret-sources" && i + 1 < args.size()) {
            auto loaded = loadSecretSources(args[++i]);
            if (!loaded) {
                std::cerr << "sevf_lint: could not read secret-sources "
                             "file: "
                          << args[i] << "\n";
                return 2;
            }
            opts.extra_secret_sources.insert(
                opts.extra_secret_sources.end(), loaded->begin(),
                loaded->end());
        } else if (args[i] == "--lock-order" && i + 1 < args.size()) {
            auto spec = sevf::lint::loadLockOrderSpec(args[++i]);
            if (!spec) {
                std::cerr << "sevf_lint: could not read lock-order file: "
                          << args[i] << "\n";
                return 2;
            }
            opts.lock_order_spec = std::move(*spec);
        } else if (args[i] == "--tcb-budget" && i + 1 < args.size()) {
            auto budget = sevf::lint::loadTcbBudget(args[++i]);
            if (!budget) {
                std::cerr << "sevf_lint: could not read tcb-budget file: "
                          << args[i] << "\n";
                return 2;
            }
            opts.tcb_budget = std::move(*budget);
        } else if (args[i] == "--jobs" && i + 1 < args.size()) {
            opts.jobs = static_cast<unsigned>(std::stoul(args[++i]));
        } else if (args[i] == "--stats") {
            out.stats = true;
        } else if (args[i] == "--format=json") {
            out.json = true;
        } else if (args[i] == "--tcb") {
            out.print_tcb = true;
        } else if (args[i] == "--tcb-out" && i + 1 < args.size()) {
            out.tcb_out = args[++i];
        } else {
            std::cerr << "usage: sevf_lint [--root <dir>] "
                         "[--secret-sources <file>] [--lock-order <file>] "
                         "[--tcb-budget <file>] [--jobs <n>] [--stats] "
                         "[--format=json] [--tcb] [--tcb-out <file>] | "
                         "--selftest <fixture_root>\n";
            return 2;
        }
    }
    if (!selftest_root.empty()) {
        return selfTest(selftest_root);
    }
    opts.root = root.empty() ? "src" : root;
    return lintTree(std::move(opts), out);
}
