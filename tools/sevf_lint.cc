/**
 * @file
 * sevf_lint: the project's custom invariant checker.
 *
 * Walks a source tree (default: src/) and enforces the conventions the
 * compiler cannot:
 *
 *   header-guard      .h guards are SEVF_<DIR>_<FILE>_H_
 *   include-path      quoted includes are project-relative ("base/status.h",
 *                     never "../x.h" or "status.h") and name real files
 *   banned-construct  no throw, rand(), raw new[], and no std::cout
 *                     outside stats/ (tools/ is not linted) — the boot
 *                     path is exception-free and deterministic
 *   cc-h-pairing      a .cc with a same-named sibling .h includes that
 *                     header first, so every interface header is
 *                     self-contained-compiled at least once
 *   unguarded-result  heuristic: a variable declared Result<...> must be
 *                     guarded (isOk()/valueOr()/errorOr()) in the same
 *                     function before .value()/.take()
 *   secret-flow       intraprocedural dataflow: a variable assigned from
 *                     a secret-source function (dhSharedKey, open,
 *                     keyFor, ... — extend with --secret-sources) is
 *                     tracked through same-function assignments; flowing
 *                     it into a logging/serialization sink (inform,
 *                     record, recordData, addItem, toHex, render, ...)
 *                     without an intervening declassify() is flagged
 *   unused-suppression  every "sevf_lint: allow(...)" comment must
 *                     actually suppress a violation; stale ones rot
 *                     into blanket permission and are errors themselves
 *
 * Suppress a finding with a trailing or preceding comment:
 *
 *     do_scary_thing(); // sevf_lint: allow(banned-construct)
 *
 * Usage:
 *     sevf_lint --root <dir> [--secret-sources <file>]
 *                                  lint a tree, exit 1 on violations;
 *                                  the file adds one secret-source
 *                                  function name per line ('#' comments)
 *     sevf_lint --selftest <dir>   run the fixture self-test: each
 *                                  subdirectory is named for the rule it
 *                                  must trip ("suppressed" must be clean)
 *
 * Registered as two ctests so every test run is also a lint run.
 */
#include <algorithm>
#include <cctype>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <optional>
#include <regex>
#include <sstream>
#include <string>
#include <vector>

namespace fs = std::filesystem;

namespace {

struct Violation {
    std::string file; // path relative to the lint root
    size_t line;      // 1-based
    std::string rule;
    std::string message;
};

struct FileText {
    std::vector<std::string> raw;      //!< original lines
    std::vector<std::string> scrubbed; //!< comments + literals blanked
};

/**
 * Blank out //, multi-line comments, and string/char literals while
 * preserving line structure, so construct scans don't fire on prose
 * like "no exceptions are thrown here".
 */
std::vector<std::string>
scrub(const std::vector<std::string> &lines)
{
    std::vector<std::string> out;
    out.reserve(lines.size());
    bool in_block_comment = false;
    for (const std::string &line : lines) {
        std::string s;
        s.reserve(line.size());
        for (size_t i = 0; i < line.size(); ++i) {
            if (in_block_comment) {
                if (line[i] == '*' && i + 1 < line.size() &&
                    line[i + 1] == '/') {
                    in_block_comment = false;
                    ++i;
                }
                s.push_back(' ');
                continue;
            }
            if (line[i] == '/' && i + 1 < line.size()) {
                if (line[i + 1] == '/') {
                    break; // rest of line is a comment
                }
                if (line[i + 1] == '*') {
                    in_block_comment = true;
                    s.push_back(' ');
                    ++i;
                    continue;
                }
            }
            if (line[i] == '"' || line[i] == '\'') {
                char quote = line[i];
                s.push_back(quote);
                ++i;
                while (i < line.size()) {
                    if (line[i] == '\\') {
                        i += 2;
                        continue;
                    }
                    if (line[i] == quote) {
                        break;
                    }
                    ++i;
                }
                s.push_back(quote);
                continue;
            }
            s.push_back(line[i]);
        }
        out.push_back(std::move(s));
    }
    return out;
}

std::optional<FileText>
loadFile(const fs::path &path)
{
    std::ifstream in(path);
    if (!in) {
        return std::nullopt;
    }
    FileText text;
    std::string line;
    while (std::getline(in, line)) {
        text.raw.push_back(line);
    }
    text.scrubbed = scrub(text.raw);
    return text;
}

/** Does @p line contain @p word with identifier boundaries? */
bool
containsWord(const std::string &line, const std::string &word)
{
    auto ident = [](char c) {
        return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
    };
    size_t pos = 0;
    while ((pos = line.find(word, pos)) != std::string::npos) {
        bool left_ok = pos == 0 || !ident(line[pos - 1]);
        size_t end = pos + word.size();
        bool right_ok = end >= line.size() || !ident(line[end]);
        if (left_ok && right_ok) {
            return true;
        }
        ++pos;
    }
    return false;
}

/** Does @p line call @p fn (name followed by an open paren)? */
bool
callsFunction(const std::string &line, const std::string &fn)
{
    auto ident = [](char c) {
        return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
    };
    size_t pos = 0;
    while ((pos = line.find(fn, pos)) != std::string::npos) {
        bool left_ok = pos == 0 || !ident(line[pos - 1]);
        size_t end = pos + fn.size();
        while (end < line.size() && std::isspace(static_cast<unsigned char>(
                                        line[end]))) {
            ++end;
        }
        if (left_ok && end < line.size() && line[end] == '(') {
            return true;
        }
        ++pos;
    }
    return false;
}

std::string
upperIdent(std::string s)
{
    for (char &c : s) {
        c = (c == '.' || c == '/' || c == '-')
                ? '_'
                : static_cast<char>(std::toupper(static_cast<unsigned char>(c)));
    }
    return s;
}

/** Functions whose return value is secret by project policy. */
const char *const kDefaultSecretSources[] = {
    "dhSharedKey", // DH channel keys
    "open",        // unsealed launch secrets (crypto/seal.h)
    "keyFor",      // chip signing keys out of the KDS
};

/** Host-visible logging/serialization sinks for the secret-flow rule. */
const char *const kSecretSinks[] = {
    "inform", "warn", "record", "recordData", "addItem", "addItemAt",
    "toHex",  "render", "toJson",
};

class Linter
{
  public:
    explicit Linter(fs::path root,
                    std::vector<std::string> extra_secret_sources = {})
        : root_(std::move(root)),
          secret_sources_(std::begin(kDefaultSecretSources),
                          std::end(kDefaultSecretSources))
    {
        secret_sources_.insert(secret_sources_.end(),
                               extra_secret_sources.begin(),
                               extra_secret_sources.end());
    }

    std::vector<Violation>
    run()
    {
        std::vector<fs::path> files;
        for (const auto &entry : fs::recursive_directory_iterator(root_)) {
            if (!entry.is_regular_file()) {
                continue;
            }
            fs::path p = entry.path();
            if (p.extension() == ".h" || p.extension() == ".cc") {
                files.push_back(p);
            }
        }
        std::sort(files.begin(), files.end());
        for (const fs::path &p : files) {
            lintFile(p);
        }
        return violations_;
    }

  private:
    /**
     * Is a violation of @p rule at @p line (1-based) suppressed? A hit
     * records which marker did the suppressing so unused markers can be
     * flagged after all checks ran.
     */
    bool
    suppressed(const FileText &text, const std::string &rule, size_t line)
    {
        std::string marker = "sevf_lint: allow(" + rule + ")";
        for (size_t l : {line, line - 1}) {
            if (l >= 1 && l <= text.raw.size() &&
                text.raw[l - 1].find(marker) != std::string::npos) {
                used_markers_.emplace_back(l, rule);
                return true;
            }
        }
        return false;
    }

    void
    report(const fs::path &file, size_t line, const std::string &rule,
           const std::string &message, const FileText &text)
    {
        if (suppressed(text, rule, line)) {
            return;
        }
        violations_.push_back(
            {fs::relative(file, root_).generic_string(), line, rule,
             message});
    }

    void
    lintFile(const fs::path &path)
    {
        std::optional<FileText> text = loadFile(path);
        if (!text) {
            violations_.push_back({path.generic_string(), 0, "io",
                                   "could not read file"});
            return;
        }
        used_markers_.clear();
        std::string rel = fs::relative(path, root_).generic_string();
        if (path.extension() == ".h") {
            checkHeaderGuard(path, rel, *text);
        }
        checkIncludes(path, rel, *text);
        checkBannedConstructs(path, rel, *text);
        if (path.extension() == ".cc") {
            checkPairing(path, rel, *text);
            checkUnguardedResult(path, *text);
        }
        checkSecretFlow(path, *text);
        checkUnusedSuppressions(path, *text);
    }

    // ------------------------------------------------------- header-guard

    void
    checkHeaderGuard(const fs::path &path, const std::string &rel,
                     const FileText &text)
    {
        std::string stem = fs::path(rel).replace_extension("").generic_string();
        std::string expected = "SEVF_" + upperIdent(stem) + "_H_";
        size_t ifndef_line = 0;
        std::string got;
        for (size_t i = 0; i < text.scrubbed.size(); ++i) {
            const std::string &line = text.scrubbed[i];
            size_t pos = line.find("#ifndef ");
            if (pos != std::string::npos) {
                std::istringstream is(line.substr(pos + 8));
                is >> got;
                ifndef_line = i + 1;
                break;
            }
        }
        if (ifndef_line == 0) {
            report(path, 1, "header-guard",
                   "missing include guard (expected " + expected + ")",
                   text);
            return;
        }
        if (got != expected) {
            report(path, ifndef_line, "header-guard",
                   "guard is " + got + ", expected " + expected, text);
            return;
        }
        bool defined = false;
        for (const std::string &line : text.scrubbed) {
            if (line.find("#define " + expected) != std::string::npos) {
                defined = true;
                break;
            }
        }
        if (!defined) {
            report(path, ifndef_line, "header-guard",
                   "guard " + expected + " is never #defined", text);
        }
    }

    // ------------------------------------------------------- include-path

    /** Quoted includes in file order: (line number, include path). */
    std::vector<std::pair<size_t, std::string>>
    quotedIncludes(const FileText &text)
    {
        static const std::regex re("^\\s*#\\s*include\\s+\"([^\"]+)\"");
        std::vector<std::pair<size_t, std::string>> out;
        for (size_t i = 0; i < text.raw.size(); ++i) {
            std::smatch m;
            if (std::regex_search(text.raw[i], m, re)) {
                out.emplace_back(i + 1, m[1].str());
            }
        }
        return out;
    }

    void
    checkIncludes(const fs::path &path, const std::string &,
                  const FileText &text)
    {
        for (const auto &[line, inc] : quotedIncludes(text)) {
            if (inc.find("..") != std::string::npos) {
                report(path, line, "include-path",
                       "\"" + inc + "\" uses a parent-relative path", text);
                continue;
            }
            if (inc.find('/') == std::string::npos) {
                report(path, line, "include-path",
                       "\"" + inc +
                           "\" is not project-relative (expected "
                           "\"<module>/<file>\")",
                       text);
                continue;
            }
            if (!fs::exists(root_ / inc)) {
                report(path, line, "include-path",
                       "\"" + inc + "\" does not exist under " +
                           root_.generic_string(),
                       text);
            }
        }
    }

    // --------------------------------------------------- banned-construct

    void
    checkBannedConstructs(const fs::path &path, const std::string &rel,
                          const FileText &text)
    {
        static const std::regex throw_re("\\bthrow\\b");
        static const std::regex rand_re("\\brand\\s*\\(");
        static const std::regex new_array_re("\\bnew\\b[^;({]*\\[");
        static const std::regex cout_re("\\bstd::cout\\b");
        bool cout_allowed = rel.rfind("stats/", 0) == 0;
        for (size_t i = 0; i < text.scrubbed.size(); ++i) {
            const std::string &line = text.scrubbed[i];
            if (std::regex_search(line, throw_re)) {
                report(path, i + 1, "banned-construct",
                       "'throw' is banned on the boot path (use "
                       "Status/Result)",
                       text);
            }
            if (std::regex_search(line, rand_re)) {
                report(path, i + 1, "banned-construct",
                       "'rand()' is banned (use base/rng.h for "
                       "deterministic streams)",
                       text);
            }
            if (std::regex_search(line, new_array_re)) {
                report(path, i + 1, "banned-construct",
                       "raw 'new[]' is banned (use ByteVec/std::vector)",
                       text);
            }
            if (!cout_allowed && std::regex_search(line, cout_re)) {
                report(path, i + 1, "banned-construct",
                       "'std::cout' outside stats/ (use base/logging.h)",
                       text);
            }
        }
    }

    // ------------------------------------------------------- cc-h-pairing

    void
    checkPairing(const fs::path &path, const std::string &,
                 const FileText &text)
    {
        fs::path header = fs::path(path).replace_extension(".h");
        if (!fs::exists(header)) {
            return; // implementation-only file (e.g. core/strategies.cc)
        }
        std::string expected = fs::relative(header, root_).generic_string();
        auto incs = quotedIncludes(text);
        if (incs.empty() || incs.front().second != expected) {
            report(path, incs.empty() ? 1 : incs.front().first,
                   "cc-h-pairing",
                   "first include must be the paired header \"" + expected +
                       "\"",
                   text);
        }
    }

    // --------------------------------------------------- unguarded-result

    /**
     * Heuristic, matched to the project brace style (function bodies
     * open with "{" in column 0): inside each body, a variable declared
     * `Result<...> name` must appear in a guard expression —
     * name.isOk(), name.valueOr(, name.errorOr( — before name.value()
     * or name.take().
     */
    void
    checkUnguardedResult(const fs::path &path, const FileText &text)
    {
        static const std::regex decl_re(
            "\\bResult\\s*<[^;{}()]*>\\s+(\\w+)\\s*[=;]");
        size_t body_start = 0; // 0 = not inside a body
        std::vector<std::string> decls;
        std::vector<std::string> guarded;
        for (size_t i = 0; i < text.scrubbed.size(); ++i) {
            const std::string &line = text.scrubbed[i];
            if (line == "{") {
                body_start = i + 1;
                decls.clear();
                guarded.clear();
                continue;
            }
            if (line == "}") {
                body_start = 0;
                continue;
            }
            if (body_start == 0) {
                continue;
            }
            std::smatch m;
            std::string rest = line;
            while (std::regex_search(rest, m, decl_re)) {
                decls.push_back(m[1].str());
                rest = m.suffix().str();
            }
            for (const std::string &name : decls) {
                if (line.find(name + ".isOk(") != std::string::npos ||
                    line.find(name + ".valueOr(") != std::string::npos ||
                    line.find(name + ".errorOr(") != std::string::npos) {
                    guarded.push_back(name);
                }
            }
            for (const std::string &name : decls) {
                bool is_guarded =
                    std::find(guarded.begin(), guarded.end(), name) !=
                    guarded.end();
                if (is_guarded) {
                    continue;
                }
                if (line.find(name + ".value(") != std::string::npos ||
                    line.find(name + ".take(") != std::string::npos) {
                    report(path, i + 1, "unguarded-result",
                           "Result '" + name +
                               "' dereferenced without a prior isOk()/"
                               "valueOr()/errorOr() guard in this function",
                           text);
                }
            }
        }
    }

    // ------------------------------------------------------- secret-flow

    /**
     * Intraprocedural dataflow over the same brace heuristic as
     * unguarded-result. A variable assigned from a secret-source
     * function becomes tainted; assignments whose right side mentions a
     * tainted variable propagate the taint; declassify(x, ...) clears
     * it. A tainted variable reaching a logging/serialization sink —
     * or a source call nested directly inside a sink call — is flagged.
     */
    void
    checkSecretFlow(const fs::path &path, const FileText &text)
    {
        static const std::regex assign_re("(\\w+)\\s*=(?!=)");
        static const std::regex assign_or_return_re(
            "SEVF_ASSIGN_OR_RETURN\\s*\\(\\s*[^,]*?(\\w+)\\s*,");
        bool in_body = false;
        std::vector<std::string> tainted;
        auto isTainted = [&](const std::string &name) {
            return std::find(tainted.begin(), tainted.end(), name) !=
                   tainted.end();
        };
        for (size_t i = 0; i < text.scrubbed.size(); ++i) {
            const std::string &line = text.scrubbed[i];
            if (line == "{") {
                in_body = true;
                tainted.clear();
                continue;
            }
            if (line == "}") {
                in_body = false;
                continue;
            }
            if (!in_body) {
                continue;
            }

            if (line.find("declassify") != std::string::npos) {
                // An explicit declassification launders every tainted
                // variable named in it (the runtime audit-logs it).
                tainted.erase(
                    std::remove_if(tainted.begin(), tainted.end(),
                                   [&](const std::string &name) {
                                       return containsWord(line, name);
                                   }),
                    tainted.end());
                continue;
            }

            bool calls_source = std::any_of(
                secret_sources_.begin(), secret_sources_.end(),
                [&](const std::string &src) {
                    return callsFunction(line, src);
                });
            bool rhs_tainted =
                calls_source ||
                std::any_of(tainted.begin(), tainted.end(),
                            [&](const std::string &name) {
                                return containsWord(line, name);
                            });

            // Sink check first: a source call (or tainted variable)
            // feeding a sink on this very line is a leak even when the
            // value is also being assigned somewhere.
            if (rhs_tainted) {
                for (const char *sink : kSecretSinks) {
                    if (!callsFunction(line, sink)) {
                        continue;
                    }
                    report(path, i + 1, "secret-flow",
                           std::string("secret value flows into sink '") +
                               sink +
                               "' without declassify(); if this flow is "
                               "reviewed and intentional, declassify() "
                               "the value first",
                           text);
                    break;
                }
            }

            if (!rhs_tainted) {
                continue;
            }
            std::smatch m;
            if (std::regex_search(line, m, assign_re)) {
                if (!isTainted(m[1].str())) {
                    tainted.push_back(m[1].str());
                }
            } else if (std::regex_search(line, m, assign_or_return_re)) {
                if (!isTainted(m[1].str())) {
                    tainted.push_back(m[1].str());
                }
            }
        }
    }

    // ------------------------------------------------ unused-suppression

    /**
     * Runs after every other check: any "sevf_lint: allow(rule)" marker
     * that did not suppress a violation is itself an error. Stale
     * markers are how suppressions rot into blanket permission.
     */
    void
    checkUnusedSuppressions(const fs::path &path, const FileText &text)
    {
        static const std::regex marker_re(
            "sevf_lint:\\s*allow\\(([\\w-]+)\\)");
        for (size_t i = 0; i < text.raw.size(); ++i) {
            std::string rest = text.raw[i];
            std::smatch m;
            while (std::regex_search(rest, m, marker_re)) {
                std::string rule = m[1].str();
                bool used =
                    std::find(used_markers_.begin(), used_markers_.end(),
                              std::make_pair(i + 1, rule)) !=
                    used_markers_.end();
                if (!used) {
                    violations_.push_back(
                        {fs::relative(path, root_).generic_string(), i + 1,
                         "unused-suppression",
                         "suppression 'allow(" + rule +
                             ")' matches no violation on this or the "
                             "next line — remove it"});
                }
                rest = m.suffix().str();
            }
        }
    }

    fs::path root_;
    std::vector<std::string> secret_sources_;
    /** (marker line, rule) pairs consumed by suppressed() in this file. */
    std::vector<std::pair<size_t, std::string>> used_markers_;
    std::vector<Violation> violations_;
};

/** One secret-source function name per line; '#' starts a comment. */
std::optional<std::vector<std::string>>
loadSecretSources(const fs::path &path)
{
    std::ifstream in(path);
    if (!in) {
        return std::nullopt;
    }
    std::vector<std::string> sources;
    std::string line;
    while (std::getline(in, line)) {
        size_t hash = line.find('#');
        if (hash != std::string::npos) {
            line.erase(hash);
        }
        std::istringstream is(line);
        std::string name;
        if (is >> name) {
            sources.push_back(name);
        }
    }
    return sources;
}

int
lintTree(const fs::path &root, std::vector<std::string> extra_sources)
{
    if (!fs::is_directory(root)) {
        std::cerr << "sevf_lint: not a directory: " << root << "\n";
        return 2;
    }
    std::vector<Violation> violations =
        Linter(root, std::move(extra_sources)).run();
    for (const Violation &v : violations) {
        std::cout << v.file << ":" << v.line << ": [" << v.rule << "] "
                  << v.message << "\n";
    }
    if (!violations.empty()) {
        std::cout << violations.size() << " violation(s) under " << root
                  << "\n";
        return 1;
    }
    std::cout << "sevf_lint: clean (" << root.generic_string() << ")\n";
    return 0;
}

/**
 * Fixture self-test: every subdirectory of @p fixture_root is named for
 * the rule its files must trip; the special directory "suppressed" holds
 * rule-breaking code with suppression comments and must lint clean.
 */
int
selfTest(const fs::path &fixture_root)
{
    if (!fs::is_directory(fixture_root)) {
        std::cerr << "sevf_lint: fixture root missing: " << fixture_root
                  << "\n";
        return 2;
    }
    int failures = 0;
    int cases = 0;
    for (const auto &entry : fs::directory_iterator(fixture_root)) {
        if (!entry.is_directory()) {
            continue;
        }
        ++cases;
        std::string rule = entry.path().filename().string();
        std::vector<Violation> violations = Linter(entry.path()).run();
        if (rule == "suppressed") {
            if (!violations.empty()) {
                std::cerr << "FAIL " << rule << ": expected clean, got "
                          << violations.size() << " violation(s); first: ["
                          << violations.front().rule << "] "
                          << violations.front().message << "\n";
                ++failures;
            } else {
                std::cout << "ok   " << rule << " (clean as expected)\n";
            }
            continue;
        }
        bool hit = std::any_of(
            violations.begin(), violations.end(),
            [&](const Violation &v) { return v.rule == rule; });
        if (!hit) {
            std::cerr << "FAIL " << rule << ": fixture did not trip the '"
                      << rule << "' rule\n";
            ++failures;
        } else {
            std::cout << "ok   " << rule << "\n";
        }
    }
    if (cases == 0) {
        std::cerr << "sevf_lint: no fixture cases found\n";
        return 2;
    }
    std::cout << (cases - failures) << "/" << cases
              << " fixture cases passed\n";
    return failures == 0 ? 0 : 1;
}

} // namespace

int
main(int argc, char **argv)
{
    std::vector<std::string> args(argv + 1, argv + argc);
    std::string root;
    std::string selftest_root;
    std::vector<std::string> extra_sources;
    for (size_t i = 0; i < args.size(); ++i) {
        if (args[i] == "--root" && i + 1 < args.size()) {
            root = args[++i];
        } else if (args[i] == "--selftest" && i + 1 < args.size()) {
            selftest_root = args[++i];
        } else if (args[i] == "--secret-sources" && i + 1 < args.size()) {
            auto loaded = loadSecretSources(args[++i]);
            if (!loaded) {
                std::cerr << "sevf_lint: could not read secret-sources "
                             "file: "
                          << args[i] << "\n";
                return 2;
            }
            extra_sources.insert(extra_sources.end(), loaded->begin(),
                                 loaded->end());
        } else {
            std::cerr << "usage: sevf_lint [--root <dir>] "
                         "[--secret-sources <file>] | --selftest "
                         "<fixture_root>\n";
            return 2;
        }
    }
    if (!selftest_root.empty()) {
        return selfTest(selftest_root);
    }
    return lintTree(root.empty() ? "src" : root, std::move(extra_sources));
}
