/**
 * @file
 * The sevf_lint engine: parsing, the cross-TU program model, and every
 * lint pass, factored out of the CLI so the gtest suite can drive the
 * same code paths (tests/lint_test.cc).
 *
 * Layering:
 *
 *   FileParser      one file -> FileModel: a scope-tracking scan of the
 *                   scrubbed text that recovers structs (fields, mutex
 *                   members, SEVF_GUARDED_BY guards), functions
 *                   (signature annotations, parameters, local reference
 *                   bindings), and per-statement facts (text, lockset
 *                   held, acquisitions, calls, returns).
 *   GlobalModel     all FileModels -> cross-TU symbol table (structs by
 *                   canonical name, functions by base/qualified name),
 *                   transitive lock-acquisition summaries (fixed point
 *                   over the call graph), and secret-flow summaries
 *                   (secret-returning and sink-forwarding functions,
 *                   both computed to a fixed point).
 *   Passes          per-file rules (header-guard, include-path,
 *                   banned-construct, cc-h-pairing, unguarded-result,
 *                   unused-suppression), the concurrency passes
 *                   (guarded-by, lock-order), the secret-flow pass
 *                   (intra- and interprocedural), and the root-of-trust
 *                   audit (TCB reachability/budget, banned constructs
 *                   and call cycles inside the closure, untrusted-input
 *                   bounds checking).
 *
 * Canonical lock names are "<Struct>::<member>" (namespaces omitted,
 * nested/out-of-line struct names kept: "ThreadPool::Impl::mu"); the
 * same spelling is used by tools/lock-order.txt. Expressions that do
 * not resolve to a canonical name are matched by base name for
 * guarded-by and *excluded* from lock-order edges, so ambiguity can
 * produce a false negative but never a false cycle.
 *
 * The runner itself dogfoods base/parallel.h: files are parsed and the
 * per-file passes run on a ThreadPool, with per-pass wall times
 * reported through RunResult::stats (--stats in the CLI).
 *
 * base/mutex.h and base/thread_annotations.h are exempt from the
 * concurrency passes: they implement the primitives the passes reason
 * about. SEVF_NO_THREAD_SAFETY_ANALYSIS exempts a function from
 * guarded-by (field and REQUIRES checks) only - its acquisitions still
 * feed lock-order, which is about whole-program ordering.
 *
 * The root-of-trust audit (base/trust_zones.h) computes the transitive
 * callee closure of every SEVF_TCB entry point over the same resolved
 * call graph. resolveCall's conservatism cuts both ways here: an
 * ambiguous callee never joins the closure, so the inventory is a
 * lower bound - which is why banned modules and banned constructs are
 * enforced on top of the budget, and why entry points live on
 * definitions (the parser models bodies, not declarations).
 */
#ifndef SEVF_TOOLS_SEVF_LINT_ENGINE_H_
#define SEVF_TOOLS_SEVF_LINT_ENGINE_H_

#include <algorithm>
#include <atomic>
#include <cctype>
#include <chrono>
#include <filesystem>
#include <fstream>
#include <iomanip>
#include <iterator>
#include <map>
#include <optional>
#include <regex>
#include <set>
#include <sstream>
#include <string>
#include <tuple>
#include <utility>
#include <vector>

#include "base/parallel.h"

namespace sevf::lint {

namespace fs = std::filesystem;

struct Violation {
    std::string file; //!< path relative to the lint root
    size_t line;      //!< 1-based
    std::string rule;
    std::string message;
};

struct FileText {
    std::vector<std::string> raw;      //!< original lines
    std::vector<std::string> scrubbed; //!< comments + literals blanked
};

/**
 * Blank out //, multi-line comments, and string/char literals while
 * preserving line structure, so construct scans don't fire on prose
 * like "no exceptions are thrown here".
 */
inline std::vector<std::string>
scrub(const std::vector<std::string> &lines)
{
    std::vector<std::string> out;
    out.reserve(lines.size());
    bool in_block_comment = false;
    for (const std::string &line : lines) {
        std::string s;
        s.reserve(line.size());
        for (size_t i = 0; i < line.size(); ++i) {
            if (in_block_comment) {
                if (line[i] == '*' && i + 1 < line.size() &&
                    line[i + 1] == '/') {
                    in_block_comment = false;
                    ++i;
                }
                s.push_back(' ');
                continue;
            }
            if (line[i] == '/' && i + 1 < line.size()) {
                if (line[i + 1] == '/') {
                    break; // rest of line is a comment
                }
                if (line[i + 1] == '*') {
                    in_block_comment = true;
                    s.push_back(' ');
                    ++i;
                    continue;
                }
            }
            if (line[i] == '"' || line[i] == '\'') {
                char quote = line[i];
                s.push_back(quote);
                ++i;
                while (i < line.size()) {
                    if (line[i] == '\\') {
                        i += 2;
                        continue;
                    }
                    if (line[i] == quote) {
                        break;
                    }
                    ++i;
                }
                s.push_back(quote);
                continue;
            }
            s.push_back(line[i]);
        }
        out.push_back(std::move(s));
    }
    return out;
}

inline std::optional<FileText>
loadFile(const fs::path &path)
{
    std::ifstream in(path);
    if (!in) {
        return std::nullopt;
    }
    FileText text;
    std::string line;
    while (std::getline(in, line)) {
        text.raw.push_back(line);
    }
    text.scrubbed = scrub(text.raw);
    return text;
}

inline bool
isIdentChar(char c)
{
    return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

/** Does @p line contain @p word with identifier boundaries? */
inline bool
containsWord(const std::string &line, const std::string &word)
{
    size_t pos = 0;
    while ((pos = line.find(word, pos)) != std::string::npos) {
        bool left_ok = pos == 0 || !isIdentChar(line[pos - 1]);
        size_t end = pos + word.size();
        bool right_ok = end >= line.size() || !isIdentChar(line[end]);
        if (left_ok && right_ok) {
            return true;
        }
        ++pos;
    }
    return false;
}

/** Does @p line call @p fn (name followed by an open paren)? */
inline bool
callsFunction(const std::string &line, const std::string &fn)
{
    size_t pos = 0;
    while ((pos = line.find(fn, pos)) != std::string::npos) {
        bool left_ok = pos == 0 || !isIdentChar(line[pos - 1]);
        size_t end = pos + fn.size();
        while (end < line.size() &&
               std::isspace(static_cast<unsigned char>(line[end]))) {
            ++end;
        }
        if (left_ok && end < line.size() && line[end] == '(') {
            return true;
        }
        ++pos;
    }
    return false;
}

/** Index of the ')' matching the '(' at @p open, or npos. */
inline size_t
matchParenAt(const std::string &s, size_t open)
{
    int depth = 0;
    for (size_t i = open; i < s.size(); ++i) {
        if (s[i] == '(') {
            ++depth;
        } else if (s[i] == ')') {
            if (--depth == 0) {
                return i;
            }
        }
    }
    return std::string::npos;
}

inline std::string
upperIdent(std::string s)
{
    for (char &c : s) {
        c = (c == '.' || c == '/' || c == '-')
                ? '_'
                : static_cast<char>(
                      std::toupper(static_cast<unsigned char>(c)));
    }
    return s;
}

inline std::string
trimCopy(const std::string &s)
{
    size_t b = s.find_first_not_of(" \t");
    if (b == std::string::npos) {
        return "";
    }
    size_t e = s.find_last_not_of(" \t");
    return s.substr(b, e - b + 1);
}

/** Collapse runs of whitespace to single spaces (statement texts). */
inline std::string
collapseWs(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    bool in_space = false;
    for (char c : s) {
        if (c == ' ' || c == '\t') {
            in_space = true;
            continue;
        }
        if (in_space && !out.empty()) {
            out.push_back(' ');
        }
        in_space = false;
        out.push_back(c);
    }
    return out;
}

/** Split @p s on top-level commas (paren/angle/brace depth 0). */
inline std::vector<std::string>
splitTopCommas(const std::string &s)
{
    std::vector<std::string> out;
    int paren = 0;
    int angle = 0;
    int brace = 0;
    std::string cur;
    for (char c : s) {
        if (c == '(') {
            ++paren;
        } else if (c == ')') {
            --paren;
        } else if (c == '<') {
            ++angle;
        } else if (c == '>') {
            angle = std::max(0, angle - 1);
        } else if (c == '{') {
            ++brace;
        } else if (c == '}') {
            --brace;
        } else if (c == ',' && paren == 0 && angle == 0 && brace == 0) {
            out.push_back(trimCopy(cur));
            cur.clear();
            continue;
        }
        cur.push_back(c);
    }
    if (!trimCopy(cur).empty()) {
        out.push_back(trimCopy(cur));
    }
    return out;
}

/**
 * Last plain type token of a declaration prefix: template arguments
 * stripped, cv/ref/pointer decoration dropped, namespace qualifiers
 * removed ("const std::map<u64, Segment> &" -> "map",
 * "base::Mutex" -> "Mutex", "Impl *" -> "Impl").
 */
inline std::string
lastTypeToken(const std::string &decl)
{
    std::string flat;
    int angle = 0;
    for (char c : decl) {
        if (c == '<') {
            ++angle;
            continue;
        }
        if (c == '>') {
            angle = std::max(0, angle - 1);
            continue;
        }
        if (angle == 0) {
            flat.push_back(c);
        }
    }
    static const std::set<std::string> kCv = {
        "const",  "volatile", "mutable", "static", "constexpr",
        "struct", "class",    "typename", "inline", "unsigned",
        "signed", "auto",     "register", "thread_local",
    };
    std::string last;
    std::string cur;
    auto flush = [&]() {
        if (!cur.empty() && kCv.find(cur) == kCv.end()) {
            size_t sep = cur.rfind("::");
            last = sep == std::string::npos ? cur : cur.substr(sep + 2);
        }
        cur.clear();
    };
    for (char c : flat) {
        if (isIdentChar(c) || c == ':') {
            cur.push_back(c);
        } else {
            flush();
        }
    }
    flush();
    return last;
}

/** Functions whose return value is secret by project policy. */
inline const char *const kDefaultSecretSources[] = {
    "dhSharedKey", // DH channel keys
    "open",        // unsealed launch secrets (crypto/seal.h)
    "keyFor",      // chip signing keys out of the KDS
};

/** Host-visible logging/serialization sinks for the secret-flow rules. */
inline const char *const kSecretSinks[] = {
    "inform", "warn", "record", "recordData", "addItem", "addItemAt",
    "toHex",  "render", "toJson",
};

// ---- Program model -------------------------------------------------------

struct FieldDecl {
    std::string name;
    std::string type_token; //!< lastTypeToken of the declared type
    std::string guard_expr; //!< SEVF_GUARDED_BY/PT_GUARDED_BY argument
    bool is_mutex = false;
    size_t line = 0;
};

struct StructDecl {
    std::string canonical; //!< "Shard", "ThreadPool::Impl", ...
    std::string file;      //!< lint-root-relative path of the definition
    size_t line = 0;
    std::vector<FieldDecl> fields;

    const FieldDecl *
    field(const std::string &name) const
    {
        for (const FieldDecl &f : fields) {
            if (f.name == name) {
                return &f;
            }
        }
        return nullptr;
    }
};

/** One lock acquisition with the lockset held just before it. */
struct AcquireSite {
    std::string expr; //!< raw text, e.g. "impl_->mu", "shard.mu", "mu"
    size_t line = 0;
    std::vector<std::string> held_before;
};

struct CallRec {
    std::string name;      //!< last-component callee name
    std::string qualifier; //!< "base::" style prefix, may be empty
    std::string receiver;  //!< "impl_", "cache", "" free, "?" complex
    std::vector<std::string> args;
    size_t line = 0;
    std::vector<std::string> held;
};

struct StmtRec {
    std::string text; //!< scrubbed, whitespace-collapsed statement
    size_t line = 0;  //!< line the statement started on
    std::vector<std::string> held;
};

struct FunctionDecl {
    std::string base;        //!< "parallelFor"
    std::string name_prefix; //!< "ThreadPool" from "ThreadPool::parallelFor"
    std::string struct_name; //!< enclosing struct canonical, or "" for free
    std::string file;
    size_t line = 0;
    size_t end_line = 0; //!< closing-brace line (0 until the body ends)
    bool no_tsa = false;
    bool tcb_entry = false;       //!< SEVF_TCB on the definition
    bool untrusted_input = false; //!< SEVF_UNTRUSTED_INPUT
    bool tcb_exempt = false;      //!< SEVF_TCB_EXEMPT
    std::vector<std::string> requires_exprs;
    std::vector<std::string> excludes_exprs;
    std::vector<std::pair<std::string, std::string>> params; //!< name, type
    std::vector<std::string> pointer_params; //!< params declared with '*'
    std::vector<std::pair<std::string, std::string>> locals; //!< name, type
    std::vector<AcquireSite> acquires;
    std::vector<CallRec> calls;
    std::vector<StmtRec> stmts;
    std::vector<std::pair<std::string, size_t>> returns; //!< expr, line

    std::string
    display() const
    {
        std::string scope =
            !struct_name.empty() ? struct_name : name_prefix;
        return scope.empty() ? base : scope + "::" + base;
    }

    const std::string *
    paramType(const std::string &name) const
    {
        for (const auto &[n, t] : params) {
            if (n == name) {
                return &t;
            }
        }
        return nullptr;
    }

    const std::string *
    localType(const std::string &name) const
    {
        for (const auto &[n, t] : locals) {
            if (n == name) {
                return &t;
            }
        }
        return nullptr;
    }
};

struct FileModel {
    fs::path path;
    std::string rel;
    FileText text;
    bool loaded = false;
    /** base/mutex.h + base/thread_annotations.h implement the
     *  primitives; their internals are exempt from concurrency passes. */
    bool exempt_concurrency = false;
    std::vector<StructDecl> structs;
    std::vector<FunctionDecl> functions;
    std::vector<Violation> violations;
    /** (marker line, rule) pairs consumed by suppression checks. */
    std::vector<std::pair<size_t, std::string>> used_markers;
};

// ---- File parser ---------------------------------------------------------

/**
 * Scope-tracking scan of one scrubbed file. Statements are accumulated
 * between ';'/'{'/'}' boundaries (so multi-line statements are seen
 * whole), braces are classified into namespace/struct/enum/function/
 * block scopes from the pending declaration text, and brace
 * initializers ("value{0}", "= {...}", "Segment{...}") are recognized
 * so they do not open scopes. Matched to the project style (leading
 * return types, bodies opened by a brace on its own line) but tolerant
 * of single-line inline bodies.
 */
class FileParser
{
  public:
    explicit FileParser(FileModel &model) : model_(model) {}

    void
    parse()
    {
        for (size_t i = 0; i < model_.text.scrubbed.size(); ++i) {
            line_no_ = i + 1;
            const std::string &line = model_.text.scrubbed[i];
            std::string trimmed = trimCopy(line);
            if (!trimmed.empty() && trimmed[0] == '#') {
                if (init_depth_ == 0 && paren_depth_ == 0) {
                    resetPending();
                }
                continue;
            }
            for (char c : line) {
                feed(c);
            }
            appendPending(' ');
        }
    }

  private:
    struct Scope {
        enum Kind { kNamespace, kStruct, kEnum, kFunction, kBlock } kind;
        std::string name;    //!< struct canonical for kStruct
        int func = -1;       //!< FunctionDecl index for kFunction
        int entry_paren = 0; //!< paren_depth_ to restore on pop
    };

    struct HeldLock {
        std::string expr;
        size_t level;       //!< scopes_.size() at acquisition
        bool manual;        //!< .lock()/.unlock() pair, not RAII
    };

    void
    resetPending()
    {
        pending_.clear();
        pending_line_ = 0;
    }

    void
    appendPending(char c)
    {
        if (pending_line_ == 0 && c != ' ' && c != '\t') {
            pending_line_ = line_no_;
        }
        pending_.push_back(c == '\t' ? ' ' : c);
    }

    int
    currentFunction() const
    {
        for (auto it = scopes_.rbegin(); it != scopes_.rend(); ++it) {
            if (it->kind == Scope::kFunction) {
                return it->func;
            }
            if (it->kind == Scope::kStruct ||
                it->kind == Scope::kNamespace) {
                break;
            }
        }
        return -1;
    }

    const Scope *
    innermostStruct() const
    {
        for (auto it = scopes_.rbegin(); it != scopes_.rend(); ++it) {
            if (it->kind == Scope::kStruct) {
                return &*it;
            }
        }
        return nullptr;
    }

    bool
    inStructScope() const
    {
        return !scopes_.empty() && scopes_.back().kind == Scope::kStruct;
    }

    void
    feed(char c)
    {
        if (init_depth_ > 0) {
            if (c == '{') {
                ++init_depth_;
            } else if (c == '}') {
                --init_depth_;
            }
            appendPending(c);
            return;
        }
        switch (c) {
        case '(':
            ++paren_depth_;
            appendPending(c);
            return;
        case ')':
            paren_depth_ = std::max(0, paren_depth_ - 1);
            appendPending(c);
            return;
        case ';':
            if (paren_depth_ > 0) {
                appendPending(c); // for-loop header
                return;
            }
            handleSemicolon();
            return;
        case ':':
            handleColon();
            return;
        case '{':
            handleOpenBrace();
            return;
        case '}':
            handleCloseBrace();
            return;
        default:
            appendPending(c);
            return;
        }
    }

    void
    handleColon()
    {
        std::string t = trimCopy(pending_);
        // Access specifiers and case labels would otherwise contaminate
        // the next statement's pending text.
        if (t == "public" || t == "private" || t == "protected") {
            resetPending();
            return;
        }
        if (currentFunction() >= 0 && paren_depth_ == 0 &&
            (t.rfind("case ", 0) == 0 || t == "default")) {
            resetPending();
            return;
        }
        appendPending(':');
    }

    void
    handleSemicolon()
    {
        std::string t = collapseWs(trimCopy(pending_));
        size_t line = pending_line_ ? pending_line_ : line_no_;
        resetPending();
        if (t.empty()) {
            return;
        }
        int fn = currentFunction();
        if (fn >= 0) {
            processStatement(t, line, fn);
        } else if (inStructScope()) {
            processStructMember(t, line);
        }
        // Namespace/global-scope declarations are not modeled.
    }

    static bool
    isControlKeyword(const std::string &tok)
    {
        static const std::set<std::string> kCtl = {
            "if", "else", "for", "while", "do", "switch", "try", "catch",
        };
        return kCtl.find(tok) != kCtl.end();
    }

    static std::string
    firstToken(const std::string &s)
    {
        size_t b = 0;
        while (b < s.size() && !isIdentChar(s[b])) {
            ++b;
        }
        size_t e = b;
        while (e < s.size() && isIdentChar(s[e])) {
            ++e;
        }
        return s.substr(b, e - b);
    }

    void
    handleOpenBrace()
    {
        std::string t = collapseWs(trimCopy(pending_));
        size_t line = pending_line_ ? pending_line_ : line_no_;
        std::string tok = firstToken(t);
        int fn = currentFunction();
        char last = t.empty() ? '\0' : t.back();

        if (t.empty()) {
            pushScope({Scope::kBlock, "", -1, paren_depth_});
            resetPending();
            return;
        }
        if (tok == "namespace" || containsWord(t, "namespace")) {
            std::string name;
            size_t pos = t.find("namespace");
            if (pos != std::string::npos) {
                name = trimCopy(t.substr(pos + 9));
            }
            pushScope({Scope::kNamespace, name, -1, paren_depth_});
            resetPending();
            return;
        }
        if (containsWord(t, "enum")) {
            pushScope({Scope::kEnum, "", -1, paren_depth_});
            resetPending();
            return;
        }
        if (containsWord(t, "struct") || containsWord(t, "class") ||
            containsWord(t, "union")) {
            pushScope({Scope::kStruct, structCanonical(t), -1,
                       paren_depth_});
            resetPending();
            return;
        }
        if (isControlKeyword(tok)) {
            if (fn >= 0) {
                processStatement(t, line, fn);
            }
            pushScope({Scope::kBlock, "", -1, paren_depth_});
            resetPending();
            return;
        }
        if (t.find('(') != std::string::npos) {
            if (fn >= 0) {
                // Lambda body vs. aggregate init inside an argument
                // list: only a lambda introducer at the tail -
                // "[..](..)", optionally mutable/noexcept/-> type -
                // opens a block. Anything else (Foo{...} in a call)
                // keeps accumulating so the whole statement, inner
                // calls included, is seen at its ';'.
                static const std::regex lambda_tail_re(
                    "\\[[^\\[\\]]*\\]\\s*(\\([^()]*\\))?\\s*(mutable)?"
                    "\\s*(noexcept)?\\s*(->[^{]*)?$");
                if (std::regex_search(t, lambda_tail_re)) {
                    // Record the pending text first - it may contain
                    // calls and acquisitions.
                    processStatement(t, line, fn);
                    pushScope({Scope::kBlock, "", -1, paren_depth_});
                    // The lambda usually sits inside an unbalanced
                    // argument list; statements in its body must still
                    // terminate at ';'. entry_paren restores the
                    // caller's depth at the closing brace.
                    paren_depth_ = 0;
                    resetPending();
                    return;
                }
            } else if (paren_depth_ == 0) {
                int idx = beginFunction(t, line);
                pushScope({Scope::kFunction, "", idx, paren_depth_});
                resetPending();
                return;
            }
        }
        // Brace initializer ("value{0}", "= {", "return {", or inside
        // an argument list): keep accumulating, no scope.
        (void)last;
        ++init_depth_;
        appendPending('{');
    }

    void
    handleCloseBrace()
    {
        resetPending();
        if (scopes_.empty()) {
            return;
        }
        Scope popped = scopes_.back();
        scopes_.pop_back();
        paren_depth_ = popped.entry_paren;
        size_t new_level = scopes_.size();
        held_.erase(std::remove_if(held_.begin(), held_.end(),
                                   [&](const HeldLock &h) {
                                       return !h.manual &&
                                              h.level > new_level;
                                   }),
                    held_.end());
        if (popped.kind == Scope::kFunction) {
            held_.erase(std::remove_if(held_.begin(), held_.end(),
                                       [&](const HeldLock &h) {
                                           return h.level > new_level;
                                       }),
                        held_.end());
            if (popped.func >= 0) {
                model_.functions[popped.func].end_line = line_no_;
            }
        }
    }

    void
    pushScope(Scope s)
    {
        scopes_.push_back(std::move(s));
    }

    /** Canonical name for a struct introduced by declaration text @p t. */
    std::string
    structCanonical(const std::string &t)
    {
        // Name: last "::"-qualified identifier before any base-clause
        // colon, skipping decoration like alignas(64) / SEVF_CAPABILITY.
        std::string head = t;
        for (size_t i = 1; i + 1 < head.size(); ++i) {
            if (head[i] == ':' && head[i - 1] != ':' &&
                head[i + 1] != ':') {
                head = head.substr(0, i);
                break;
            }
        }
        std::string name;
        std::string cur;
        for (size_t i = 0; i <= head.size(); ++i) {
            char c = i < head.size() ? head[i] : ' ';
            if (isIdentChar(c) || c == ':') {
                cur.push_back(c);
            } else {
                if (!cur.empty() && cur != "struct" && cur != "class" &&
                    cur != "union" && cur != "final" &&
                    cur.rfind("SEVF_", 0) != 0 && cur != "alignas") {
                    name = cur;
                }
                cur.clear();
            }
        }
        while (!name.empty() && name.front() == ':') {
            name.erase(name.begin());
        }
        if (name.empty()) {
            name = "<anon" + std::to_string(++anon_counter_) + ">";
        }
        if (name.find("::") == std::string::npos) {
            if (const Scope *outer = innermostStruct()) {
                name = outer->name + "::" + name;
            }
        }
        model_.structs.push_back({name, model_.rel, line_no_, {}});
        struct_index_[name] = model_.structs.size() - 1;
        return name;
    }

    // ---- struct members --------------------------------------------------

    void
    processStructMember(const std::string &t, size_t line)
    {
        const Scope *s = innermostStruct();
        if (s == nullptr) {
            return;
        }
        FieldDecl field;
        field.line = line;
        static const std::regex guard_re(
            "SEVF_(?:PT_)?GUARDED_BY\\(([^()]*)\\)");
        std::smatch m;
        std::string text = t;
        if (std::regex_search(text, m, guard_re)) {
            field.guard_expr = trimCopy(m[1].str());
        }
        // Strip annotations (before the paren test below - the guard
        // argument is parenthesized), then default initializers and
        // brace/array suffixes.
        static const std::regex ann_re("SEVF_\\w+(\\([^()]*\\))?");
        text = std::regex_replace(text, ann_re, " ");
        if (text.find('(') != std::string::npos) {
            return; // method declaration / function pointer / using
        }
        std::string tok = firstToken(text);
        if (tok == "struct" || tok == "class" || tok == "union" ||
            tok == "using" || tok == "typedef" || tok == "friend" ||
            tok == "enum") {
            return;
        }
        size_t eq = findTopLevel(text, '=');
        if (eq != std::string::npos) {
            text = text.substr(0, eq);
        }
        size_t brace = text.find('{');
        if (brace != std::string::npos) {
            text = text.substr(0, brace);
        }
        static const std::regex arr_re("\\[[^\\]]*\\]");
        text = std::regex_replace(text, arr_re, " ");
        text = trimCopy(text);
        // Field name: last identifier; type: everything before it.
        size_t end = text.size();
        while (end > 0 && !isIdentChar(text[end - 1])) {
            --end;
        }
        size_t begin = end;
        while (begin > 0 && isIdentChar(text[begin - 1])) {
            --begin;
        }
        if (begin == end) {
            return;
        }
        field.name = text.substr(begin, end - begin);
        std::string type = text.substr(0, begin);
        field.type_token = lastTypeToken(type);
        if (field.type_token.empty() || field.name == field.type_token) {
            return; // unnamed or unparseable
        }
        field.is_mutex = field.type_token == "Mutex" ||
                         field.type_token == "mutex" ||
                         field.type_token == "recursive_mutex";
        model_.structs[struct_index_.at(s->name)].fields.push_back(
            std::move(field));
    }

    static size_t
    findTopLevel(const std::string &s, char target)
    {
        int paren = 0;
        int angle = 0;
        for (size_t i = 0; i < s.size(); ++i) {
            char c = s[i];
            if (c == '(') {
                ++paren;
            } else if (c == ')') {
                --paren;
            } else if (c == '<') {
                ++angle;
            } else if (c == '>') {
                angle = std::max(0, angle - 1);
            } else if (c == target && paren == 0 && angle == 0) {
                if (target == '=' &&
                    ((i + 1 < s.size() && s[i + 1] == '=') ||
                     (i > 0 && (s[i - 1] == '=' || s[i - 1] == '!' ||
                                s[i - 1] == '<' || s[i - 1] == '>' ||
                                s[i - 1] == '+' || s[i - 1] == '-' ||
                                s[i - 1] == '*' || s[i - 1] == '/' ||
                                s[i - 1] == '|' || s[i - 1] == '&' ||
                                s[i - 1] == '^' || s[i - 1] == '%')))) {
                    continue;
                }
                return i;
            }
        }
        return std::string::npos;
    }

    // ---- function signatures ---------------------------------------------

    int
    beginFunction(const std::string &sig, size_t line)
    {
        FunctionDecl fn;
        fn.file = model_.rel;
        fn.line = line;
        size_t open = sig.find('(');
        // Name: identifier (possibly ::-qualified, possibly ~dtor)
        // immediately before the first paren.
        size_t end = open;
        while (end > 0 &&
               std::isspace(static_cast<unsigned char>(sig[end - 1]))) {
            --end;
        }
        size_t begin = end;
        while (begin > 0 && (isIdentChar(sig[begin - 1]) ||
                             sig[begin - 1] == ':' ||
                             sig[begin - 1] == '~')) {
            --begin;
        }
        std::string full = sig.substr(begin, end - begin);
        size_t sep = full.rfind("::");
        if (sep != std::string::npos) {
            fn.name_prefix = full.substr(0, sep);
            fn.base = full.substr(sep + 2);
        } else {
            fn.base = full;
        }
        if (fn.base.empty()) {
            fn.base = "<lambda>";
        }
        if (const Scope *s = innermostStruct()) {
            fn.struct_name = s->name;
        }
        // Parameters from the first balanced paren group.
        size_t close = matchParen(sig, open);
        std::string params_text =
            close != std::string::npos
                ? sig.substr(open + 1, close - open - 1)
                : "";
        for (const std::string &piece : splitTopCommas(params_text)) {
            std::string p = piece;
            size_t eq = findTopLevel(p, '=');
            if (eq != std::string::npos) {
                p = p.substr(0, eq);
            }
            p = trimCopy(p);
            size_t pe = p.size();
            while (pe > 0 && !isIdentChar(p[pe - 1])) {
                --pe;
            }
            size_t pb = pe;
            while (pb > 0 && isIdentChar(p[pb - 1])) {
                --pb;
            }
            if (pb == pe) {
                continue;
            }
            std::string pname = p.substr(pb, pe - pb);
            std::string ptype = lastTypeToken(p.substr(0, pb));
            if (ptype.empty()) {
                continue; // unnamed parameter: pname was the type
            }
            fn.params.emplace_back(pname, ptype);
            if (p.substr(0, pb).find('*') != std::string::npos) {
                fn.pointer_params.push_back(pname);
            }
        }
        // Annotations live after the parameter list.
        std::string suffix =
            close != std::string::npos ? sig.substr(close) : sig;
        static const std::regex req_re("SEVF_REQUIRES\\(([^()]*)\\)");
        static const std::regex exc_re("SEVF_EXCLUDES\\(([^()]*)\\)");
        auto collect = [](const std::string &text, const std::regex &re,
                          std::vector<std::string> &out) {
            auto it = std::sregex_iterator(text.begin(), text.end(), re);
            for (; it != std::sregex_iterator(); ++it) {
                for (const std::string &e :
                     splitTopCommas((*it)[1].str())) {
                    out.push_back(e);
                }
            }
        };
        collect(suffix, req_re, fn.requires_exprs);
        collect(suffix, exc_re, fn.excludes_exprs);
        fn.no_tsa =
            sig.find("SEVF_NO_THREAD_SAFETY_ANALYSIS") != std::string::npos;
        // Word-boundary matches: SEVF_TCB must not fire inside
        // SEVF_TCB_EXEMPT.
        fn.tcb_entry = containsWord(sig, "SEVF_TCB");
        fn.untrusted_input = containsWord(sig, "SEVF_UNTRUSTED_INPUT");
        fn.tcb_exempt = containsWord(sig, "SEVF_TCB_EXEMPT");
        // REQUIRES locks are held on entry for the whole body.
        model_.functions.push_back(std::move(fn));
        int idx = static_cast<int>(model_.functions.size()) - 1;
        for (const std::string &e :
             model_.functions[idx].requires_exprs) {
            held_.push_back({e, scopes_.size() + 1, false});
        }
        return idx;
    }

    static size_t
    matchParen(const std::string &s, size_t open)
    {
        int depth = 0;
        for (size_t i = open; i < s.size(); ++i) {
            if (s[i] == '(') {
                ++depth;
            } else if (s[i] == ')') {
                if (--depth == 0) {
                    return i;
                }
            }
        }
        return std::string::npos;
    }

    // ---- statements -------------------------------------------------------

    std::vector<std::string>
    heldSnapshot() const
    {
        std::vector<std::string> out;
        out.reserve(held_.size());
        for (const HeldLock &h : held_) {
            out.push_back(h.expr);
        }
        return out;
    }

    void
    processStatement(const std::string &t, size_t line, int fn_idx)
    {
        FunctionDecl &fn = model_.functions[fn_idx];
        recordLocalBinding(t, fn);
        if (t.rfind("return", 0) == 0 &&
            (t.size() == 6 || !isIdentChar(t[6]))) {
            fn.returns.emplace_back(trimCopy(t.substr(6)), line);
        }
        recordAcquisitions(t, line, fn);
        recordCalls(t, line, fn);
        fn.stmts.push_back({t, line, heldSnapshot()});
    }

    void
    recordLocalBinding(const std::string &t, FunctionDecl &fn)
    {
        size_t eq = findTopLevel(t, '=');
        if (eq == std::string::npos) {
            return;
        }
        std::string lhs = trimCopy(t.substr(0, eq));
        // A declaration has a type before the name; an assignment to an
        // existing variable has a single token on the left.
        size_t end = lhs.size();
        while (end > 0 && !isIdentChar(lhs[end - 1])) {
            --end;
        }
        size_t begin = end;
        while (begin > 0 && isIdentChar(lhs[begin - 1])) {
            --begin;
        }
        if (begin == end) {
            return;
        }
        std::string name = lhs.substr(begin, end - begin);
        std::string type = lastTypeToken(lhs.substr(0, begin));
        if (type.empty()) {
            return; // plain assignment
        }
        fn.locals.emplace_back(name, type);
    }

    void
    recordAcquisitions(const std::string &t, size_t line, FunctionDecl &fn)
    {
        static const std::regex raii_re(
            "\\b(?:base::)?(?:MutexLock|std::lock_guard|std::unique_lock|"
            "std::scoped_lock)\\s*(?:<[^<>]*>)?\\s+\\w+\\s*\\(([^()]*)\\)");
        auto it = std::sregex_iterator(t.begin(), t.end(), raii_re);
        for (; it != std::sregex_iterator(); ++it) {
            std::vector<std::string> before = heldSnapshot();
            for (const std::string &e : splitTopCommas((*it)[1].str())) {
                if (e.empty()) {
                    continue;
                }
                fn.acquires.push_back({e, line, before});
                held_.push_back({e, scopes_.size(), false});
            }
        }
        // Manual X.lock() / X->lock() / X.unlock().
        static const std::regex manual_re(
            "([A-Za-z_][\\w.]*(?:->[\\w.]*)*)\\s*(?:\\.|->)\\s*"
            "(lock|unlock)\\s*\\(\\s*\\)");
        auto mt = std::sregex_iterator(t.begin(), t.end(), manual_re);
        for (; mt != std::sregex_iterator(); ++mt) {
            std::string recv = (*mt)[1].str();
            if ((*mt)[2].str() == "lock") {
                fn.acquires.push_back({recv, line, heldSnapshot()});
                held_.push_back({recv, scopes_.size(), true});
            } else {
                for (auto h = held_.rbegin(); h != held_.rend(); ++h) {
                    if (h->expr == recv) {
                        held_.erase(std::next(h).base());
                        break;
                    }
                }
            }
        }
    }

    void
    recordCalls(const std::string &t, size_t line, FunctionDecl &fn)
    {
        static const std::set<std::string> kSkip = {
            "if", "for", "while", "switch", "return", "sizeof", "catch",
            "alignas", "alignof", "decltype", "static_cast",
            "reinterpret_cast", "const_cast", "dynamic_cast", "new",
            "delete", "lock", "unlock", "try_lock", "native",
            "MutexLock", "lock_guard", "unique_lock", "scoped_lock",
            "defined", "assert",
        };
        for (size_t i = 0; i + 1 < t.size(); ++i) {
            if (!isIdentChar(t[i]) || (i > 0 && isIdentChar(t[i - 1]))) {
                continue; // not the start of an identifier
            }
            size_t e = i;
            while (e < t.size() && isIdentChar(t[e])) {
                ++e;
            }
            size_t after = e;
            while (after < t.size() && t[after] == ' ') {
                ++after;
            }
            if (after >= t.size() || t[after] != '(') {
                continue;
            }
            std::string name = t.substr(i, e - i);
            if (kSkip.count(name) || name.rfind("SEVF_", 0) == 0) {
                continue;
            }
            // Qualifier (ns::) and receiver (obj. / obj->) before it.
            std::string qualifier;
            std::string receiver;
            size_t b = i;
            if (b >= 2 && t[b - 1] == ':' && t[b - 2] == ':') {
                size_t qb = b - 2;
                while (qb > 0 &&
                       (isIdentChar(t[qb - 1]) || t[qb - 1] == ':')) {
                    --qb;
                }
                qualifier = t.substr(qb, b - qb);
                b = qb;
            }
            if (qualifier.empty()) {
                size_t rb = b;
                while (rb > 0 &&
                       std::isspace(static_cast<unsigned char>(t[rb - 1]))) {
                    --rb;
                }
                bool dot = rb >= 1 && t[rb - 1] == '.';
                bool arrow = rb >= 2 && t[rb - 2] == '-' && t[rb - 1] == '>';
                if (dot || arrow) {
                    size_t re = rb - (dot ? 1 : 2);
                    size_t rs = re;
                    while (rs > 0 && (isIdentChar(t[rs - 1]) ||
                                      t[rs - 1] == '.' ||
                                      (rs >= 2 && t[rs - 1] == '>' &&
                                       t[rs - 2] == '-'))) {
                        if (rs >= 2 && t[rs - 1] == '>' &&
                            t[rs - 2] == '-') {
                            rs -= 2;
                        } else {
                            --rs;
                        }
                    }
                    receiver = rs < re ? t.substr(rs, re - rs) : "?";
                    if (receiver.empty() ||
                        receiver.find('(') != std::string::npos ||
                        receiver.find(')') != std::string::npos) {
                        receiver = "?";
                    }
                }
            }
            CallRec call;
            call.name = name;
            call.qualifier = qualifier;
            call.receiver = receiver;
            call.line = line;
            call.held = heldSnapshot();
            size_t close = matchParen(t, after);
            if (close != std::string::npos) {
                call.args = splitTopCommas(
                    t.substr(after + 1, close - after - 1));
            }
            fn.calls.push_back(std::move(call));
        }
    }

    FileModel &model_;
    std::vector<Scope> scopes_;
    std::vector<HeldLock> held_;
    std::map<std::string, size_t> struct_index_;
    std::string pending_;
    size_t pending_line_ = 0;
    size_t line_no_ = 0;
    int paren_depth_ = 0;
    int init_depth_ = 0;
    int anon_counter_ = 0;
};

// ---- Global model --------------------------------------------------------

struct GlobalModel {
    std::vector<FileModel> *files = nullptr;
    /** last "::"-component -> candidate struct decls. */
    std::map<std::string, std::vector<const StructDecl *>> structs_by_last;
    std::map<std::string, const StructDecl *> structs_by_canonical;
    std::map<std::string, std::vector<const FunctionDecl *>> fns_by_base;
    /** "<struct canonical>::<base>" -> decl. */
    std::map<std::string, const FunctionDecl *> fns_by_qualified;
    /** Canonical lock names each function may acquire, transitively. */
    std::map<const FunctionDecl *, std::set<std::string>> transitive_acquires;
    std::set<const FunctionDecl *> secret_returning;
    /** Parameter indices that each function forwards into a sink. */
    std::map<const FunctionDecl *, std::set<size_t>> sink_forwarding;

    /**
     * Resolve a struct name reference: exact canonical, then
     * "<context>::name", then by last component preferring a
     * definition in @p file, then a globally unique match.
     */
    const StructDecl *
    resolveStruct(const std::string &name, const std::string &file,
                  const std::string &context_struct) const
    {
        if (name.empty()) {
            return nullptr;
        }
        auto exact = structs_by_canonical.find(name);
        if (exact != structs_by_canonical.end()) {
            return exact->second;
        }
        if (!context_struct.empty()) {
            auto nested =
                structs_by_canonical.find(context_struct + "::" + name);
            if (nested != structs_by_canonical.end()) {
                return nested->second;
            }
        }
        std::string last = name;
        size_t sep = last.rfind("::");
        if (sep != std::string::npos) {
            last = last.substr(sep + 2);
        }
        auto it = structs_by_last.find(last);
        if (it == structs_by_last.end()) {
            return nullptr;
        }
        std::vector<const StructDecl *> cands;
        for (const StructDecl *s : it->second) {
            if (s->canonical == name ||
                s->canonical.size() > name.size() + 1 ||
                s->canonical == last) {
                // Suffix match: "Impl" matches "ThreadPool::Impl".
                if (s->canonical == name || s->canonical == last ||
                    (s->canonical.size() > name.size() &&
                     s->canonical.compare(s->canonical.size() - name.size(),
                                          name.size(), name) == 0 &&
                     s->canonical[s->canonical.size() - name.size() - 1] ==
                         ':')) {
                    cands.push_back(s);
                }
            }
        }
        if (cands.empty()) {
            return nullptr;
        }
        std::vector<const StructDecl *> same_file;
        for (const StructDecl *s : cands) {
            if (s->file == file) {
                same_file.push_back(s);
            }
        }
        if (same_file.size() == 1) {
            return same_file.front();
        }
        if (same_file.empty() && cands.size() == 1) {
            return cands.front();
        }
        return nullptr; // ambiguous
    }

    /** The struct a (possibly qualified) function was declared on. */
    const StructDecl *
    functionStruct(const FunctionDecl &fn) const
    {
        if (!fn.struct_name.empty()) {
            return resolveStruct(fn.struct_name, fn.file, "");
        }
        if (!fn.name_prefix.empty()) {
            return resolveStruct(fn.name_prefix, fn.file, "");
        }
        return nullptr;
    }

    /**
     * Resolve the struct type of a receiver chain like "impl_",
     * "cache.entries" or "d" inside @p fn: locals, then parameters,
     * then fields of the enclosing struct, walking member accesses.
     */
    const StructDecl *
    resolveChain(const std::string &chain, const FunctionDecl &fn) const
    {
        std::vector<std::string> comps = splitChain(chain);
        if (comps.empty()) {
            return nullptr;
        }
        const StructDecl *cur = nullptr;
        const std::string *type = fn.localType(comps[0]);
        if (type == nullptr) {
            type = fn.paramType(comps[0]);
        }
        if (type != nullptr) {
            cur = resolveStruct(*type, fn.file, fn.struct_name);
        } else if (comps[0] == "this") {
            cur = functionStruct(fn);
        } else if (const StructDecl *own = functionStruct(fn)) {
            if (const FieldDecl *f = own->field(comps[0])) {
                cur = resolveStruct(f->type_token, own->file,
                                    own->canonical);
            }
        }
        for (size_t i = 1; cur != nullptr && i < comps.size(); ++i) {
            const FieldDecl *f = cur->field(comps[i]);
            cur = f != nullptr ? resolveStruct(f->type_token, cur->file,
                                               cur->canonical)
                               : nullptr;
        }
        return cur;
    }

    /**
     * Canonical "<Struct>::<member>" name of a lock expression inside
     * @p fn, or "" when it cannot be resolved unambiguously.
     */
    std::string
    resolveLock(const std::string &expr, const FunctionDecl &fn) const
    {
        std::string clean;
        for (char c : expr) {
            if (c != '&' && c != ' ' && c != '*') {
                clean.push_back(c);
            }
        }
        std::vector<std::string> comps = splitChain(clean);
        if (comps.empty()) {
            return "";
        }
        if (comps.size() == 1) {
            // Bare member of the enclosing struct.
            const StructDecl *own = functionStruct(fn);
            if (own != nullptr && own->field(comps[0]) != nullptr) {
                return own->canonical + "::" + comps[0];
            }
            return "";
        }
        std::string owner_chain = comps[0];
        for (size_t i = 1; i + 1 < comps.size(); ++i) {
            owner_chain += "." + comps[i];
        }
        const StructDecl *owner = resolveChain(owner_chain, fn);
        if (owner == nullptr || owner->field(comps.back()) == nullptr) {
            return "";
        }
        return owner->canonical + "::" + comps.back();
    }

    /** Base (last) component of a lock expression, for fuzzy matching. */
    static std::string
    lockBase(const std::string &expr)
    {
        std::vector<std::string> comps = splitChain(expr);
        return comps.empty() ? expr : comps.back();
    }

    /**
     * Resolve a call to its (unique) target: by receiver type when the
     * receiver chain resolves, else by unambiguous base name. Returns
     * nullptr for unknown or ambiguous targets - callers must treat
     * that as "no information", never as an error.
     */
    const FunctionDecl *
    resolveCall(const CallRec &call, const FunctionDecl &caller) const
    {
        if (!call.receiver.empty() && call.receiver != "?") {
            const StructDecl *s = resolveChain(call.receiver, caller);
            if (s != nullptr) {
                auto it =
                    fns_by_qualified.find(s->canonical + "::" + call.name);
                // A resolved receiver without such a method stays
                // unknown - do not fall through to the name heuristic
                // with contradicting type information in hand.
                return it != fns_by_qualified.end() ? it->second : nullptr;
            }
        }
        // Free call, or a receiver we could not type (chained calls like
        // Registry::instance().counter(...) record receiver "?"): a
        // globally unique base name is still an unambiguous target.
        auto it = fns_by_base.find(call.name);
        if (it == fns_by_base.end() || it->second.size() != 1) {
            return nullptr;
        }
        return it->second.front();
    }

    static std::vector<std::string>
    splitChain(const std::string &chain)
    {
        std::vector<std::string> out;
        std::string cur;
        for (size_t i = 0; i < chain.size(); ++i) {
            char c = chain[i];
            if (c == '.') {
                if (!cur.empty()) {
                    out.push_back(cur);
                }
                cur.clear();
            } else if (c == '-' && i + 1 < chain.size() &&
                       chain[i + 1] == '>') {
                if (!cur.empty()) {
                    out.push_back(cur);
                }
                cur.clear();
                ++i;
            } else if (isIdentChar(c)) {
                cur.push_back(c);
            } else {
                return {}; // unexpected character: unresolvable
            }
        }
        if (!cur.empty()) {
            out.push_back(cur);
        }
        return out;
    }
};

inline GlobalModel
buildGlobalModel(std::vector<FileModel> &files)
{
    GlobalModel gm;
    gm.files = &files;
    for (const FileModel &fm : files) {
        for (const StructDecl &s : fm.structs) {
            std::string last = s.canonical;
            size_t sep = last.rfind("::");
            if (sep != std::string::npos) {
                last = last.substr(sep + 2);
            }
            gm.structs_by_last[last].push_back(&s);
            gm.structs_by_canonical.emplace(s.canonical, &s);
        }
    }
    for (const FileModel &fm : files) {
        for (const FunctionDecl &fn : fm.functions) {
            gm.fns_by_base[fn.base].push_back(&fn);
            const StructDecl *s = gm.functionStruct(fn);
            if (s != nullptr) {
                gm.fns_by_qualified.emplace(
                    s->canonical + "::" + fn.base, &fn);
            }
        }
    }
    // Transitive lock acquisitions to a fixed point over the call graph.
    for (const FileModel &fm : files) {
        if (fm.exempt_concurrency) {
            continue;
        }
        for (const FunctionDecl &fn : fm.functions) {
            std::set<std::string> &acq = gm.transitive_acquires[&fn];
            for (const AcquireSite &a : fn.acquires) {
                std::string canon = gm.resolveLock(a.expr, fn);
                if (!canon.empty()) {
                    acq.insert(canon);
                }
            }
        }
    }
    for (int iter = 0; iter < 30; ++iter) {
        bool changed = false;
        for (const FileModel &fm : files) {
            if (fm.exempt_concurrency) {
                continue;
            }
            for (const FunctionDecl &fn : fm.functions) {
                std::set<std::string> &acq = gm.transitive_acquires[&fn];
                for (const CallRec &call : fn.calls) {
                    const FunctionDecl *callee = gm.resolveCall(call, fn);
                    if (callee == nullptr || callee == &fn) {
                        continue;
                    }
                    auto it = gm.transitive_acquires.find(callee);
                    if (it == gm.transitive_acquires.end()) {
                        continue;
                    }
                    for (const std::string &l : it->second) {
                        changed |= acq.insert(l).second;
                    }
                }
            }
        }
        if (!changed) {
            break;
        }
    }
    return gm;
}

// ---- Lock-order spec -----------------------------------------------------

/**
 * tools/lock-order.txt format, one rule per line ('#' comments):
 *
 *   order A B       A may be held while acquiring B; acquiring A while
 *                   holding B is a violation.
 *   exclusive A B   never nested in either direction; "exclusive A A"
 *                   bans re-acquisition of A while A is held.
 *
 * A and B are canonical "<Struct>::<member>" lock names.
 */
struct LockOrderSpec {
    std::vector<std::pair<std::string, std::string>> order;
    std::vector<std::pair<std::string, std::string>> exclusive;

    bool
    allows(const std::string &from, const std::string &to) const
    {
        for (const auto &[a, b] : order) {
            if (a == from && b == to) {
                return true;
            }
        }
        return false;
    }
};

inline std::optional<LockOrderSpec>
loadLockOrderSpec(const fs::path &path)
{
    std::ifstream in(path);
    if (!in) {
        return std::nullopt;
    }
    LockOrderSpec spec;
    std::string line;
    while (std::getline(in, line)) {
        size_t hash = line.find('#');
        if (hash != std::string::npos) {
            line.erase(hash);
        }
        std::istringstream is(line);
        std::string kind;
        std::string a;
        std::string b;
        if (!(is >> kind >> a >> b)) {
            continue;
        }
        if (kind == "order") {
            spec.order.emplace_back(a, b);
        } else if (kind == "exclusive") {
            spec.exclusive.emplace_back(a, b);
        }
    }
    return spec;
}

// ---- Pass support --------------------------------------------------------

/**
 * Suppression-aware reporting into one FileModel. A hit records which
 * marker did the suppressing so stale markers can be flagged after all
 * passes ran.
 */
inline bool
suppressedAt(FileModel &fm, const std::string &rule, size_t line)
{
    std::string marker = "sevf_lint: allow(" + rule + ")";
    for (size_t l : {line, line - 1}) {
        if (l >= 1 && l <= fm.text.raw.size() &&
            fm.text.raw[l - 1].find(marker) != std::string::npos) {
            fm.used_markers.emplace_back(l, rule);
            return true;
        }
    }
    return false;
}

inline void
reportTo(FileModel &fm, size_t line, const std::string &rule,
         const std::string &message)
{
    if (suppressedAt(fm, rule, line)) {
        return;
    }
    fm.violations.push_back({fm.rel, line, rule, message});
}

/** Canonical-or-base lockset match for guarded-by checks. */
inline bool
lockHeld(const std::string &guard_canonical, const std::string &guard_base,
         const std::vector<std::string> &held_canonicals,
         const std::vector<std::string> &held_bases)
{
    if (!guard_canonical.empty()) {
        for (const std::string &h : held_canonicals) {
            if (h == guard_canonical) {
                return true;
            }
        }
        // Fall back to base names for held locks that did not resolve.
        for (size_t i = 0; i < held_bases.size(); ++i) {
            if (held_canonicals[i].empty() &&
                held_bases[i] == guard_base) {
                return true;
            }
        }
        return false;
    }
    for (const std::string &h : held_bases) {
        if (h == guard_base) {
            return true;
        }
    }
    return false;
}

// ---- guarded-by pass -----------------------------------------------------

/** One SEVF_GUARDED_BY field known to the whole program. */
struct GuardedField {
    const StructDecl *owner;
    const FieldDecl *field;
    std::string guard_canonical; //!< "" when the guard did not resolve
    std::string guard_base;
};

inline std::vector<GuardedField>
collectGuardedFields(const std::vector<FileModel> &files)
{
    std::vector<GuardedField> out;
    for (const FileModel &fm : files) {
        if (fm.exempt_concurrency) {
            continue;
        }
        for (const StructDecl &s : fm.structs) {
            for (const FieldDecl &f : s.fields) {
                if (f.guard_expr.empty()) {
                    continue;
                }
                GuardedField g;
                g.owner = &s;
                g.field = &f;
                g.guard_base = GlobalModel::lockBase(f.guard_expr);
                if (s.field(g.guard_base) != nullptr) {
                    g.guard_canonical = s.canonical + "::" + g.guard_base;
                }
                out.push_back(g);
            }
        }
    }
    return out;
}

/**
 * The lockset pass: flags reads/writes of SEVF_GUARDED_BY fields made
 * without the guard held, and calls to SEVF_REQUIRES functions without
 * the required lock. SEVF_NO_THREAD_SAFETY_ANALYSIS exempts a function
 * from this pass only.
 */
inline void
runGuardedByPass(FileModel &fm, const GlobalModel &gm,
                 const std::vector<GuardedField> &guarded)
{
    if (fm.exempt_concurrency) {
        return;
    }
    for (const FunctionDecl &fn : fm.functions) {
        if (fn.no_tsa) {
            continue;
        }
        const StructDecl *own = gm.functionStruct(fn);
        // Cache lock-expression resolutions per function.
        std::map<std::string, std::string> canon_cache;
        auto canonOf = [&](const std::string &expr) -> const std::string & {
            auto it = canon_cache.find(expr);
            if (it == canon_cache.end()) {
                it = canon_cache
                         .emplace(expr, gm.resolveLock(expr, fn))
                         .first;
            }
            return it->second;
        };
        auto heldSets = [&](const std::vector<std::string> &held,
                            std::vector<std::string> &canonicals,
                            std::vector<std::string> &bases) {
            for (const std::string &h : held) {
                canonicals.push_back(canonOf(h));
                bases.push_back(GlobalModel::lockBase(h));
            }
        };
        std::set<std::pair<size_t, const FieldDecl *>> reported;
        for (const StmtRec &stmt : fn.stmts) {
            std::vector<std::string> held_c;
            std::vector<std::string> held_b;
            bool held_built = false;
            for (const GuardedField &g : guarded) {
                const std::string &name = g.field->name;
                size_t pos = 0;
                while ((pos = stmt.text.find(name, pos)) !=
                       std::string::npos) {
                    size_t start = pos;
                    pos += name.size();
                    // Identifier boundaries.
                    if ((start > 0 && isIdentChar(stmt.text[start - 1])) ||
                        (pos < stmt.text.size() &&
                         isIdentChar(stmt.text[pos]))) {
                        continue;
                    }
                    // A following '(' means a method call, not a field.
                    size_t after = pos;
                    while (after < stmt.text.size() &&
                           stmt.text[after] == ' ') {
                        ++after;
                    }
                    if (after < stmt.text.size() &&
                        stmt.text[after] == '(') {
                        continue;
                    }
                    bool qualified = false;
                    std::string receiver;
                    size_t rb = start;
                    while (rb > 0 && stmt.text[rb - 1] == ' ') {
                        --rb;
                    }
                    if (rb >= 2 && stmt.text[rb - 2] == ':' &&
                        stmt.text[rb - 1] == ':') {
                        continue; // scoped name, not a member access
                    }
                    bool dot = rb >= 1 && stmt.text[rb - 1] == '.';
                    bool arrow = rb >= 2 && stmt.text[rb - 2] == '-' &&
                                 stmt.text[rb - 1] == '>';
                    if (dot || arrow) {
                        qualified = true;
                        size_t re = rb - (dot ? 1 : 2);
                        size_t rs = re;
                        while (rs > 0 &&
                               (isIdentChar(stmt.text[rs - 1]) ||
                                stmt.text[rs - 1] == '.' ||
                                (rs >= 2 && stmt.text[rs - 1] == '>' &&
                                 stmt.text[rs - 2] == '-'))) {
                            if (rs >= 2 && stmt.text[rs - 1] == '>' &&
                                stmt.text[rs - 2] == '-') {
                                rs -= 2;
                            } else {
                                --rs;
                            }
                        }
                        receiver = rs < re
                                       ? stmt.text.substr(rs, re - rs)
                                       : "";
                    }
                    bool check = false;
                    if (qualified) {
                        const StructDecl *rt =
                            receiver.empty()
                                ? nullptr
                                : gm.resolveChain(receiver, fn);
                        if (rt == g.owner) {
                            check = true;
                        } else if (rt == nullptr &&
                                   fm.rel == g.owner->file) {
                            // Unresolvable receiver: only trust the
                            // match inside the declaring file.
                            check = true;
                        }
                    } else {
                        // Bare name: member functions of the owner only.
                        check = own != nullptr && own == g.owner;
                    }
                    if (!check) {
                        continue;
                    }
                    if (!held_built) {
                        heldSets(stmt.held, held_c, held_b);
                        held_built = true;
                    }
                    if (lockHeld(g.guard_canonical, g.guard_base, held_c,
                                 held_b)) {
                        continue;
                    }
                    if (reported.emplace(stmt.line, g.field).second) {
                        std::string guard_name =
                            g.guard_canonical.empty()
                                ? g.guard_base
                                : g.guard_canonical;
                        reportTo(fm, stmt.line, "guarded-by",
                                 "field '" + g.owner->canonical + "::" +
                                     name + "' (guarded by " + guard_name +
                                     ") accessed without holding the "
                                     "guard");
                    }
                }
            }
        }
        // Calls into SEVF_REQUIRES functions without the lock held.
        for (const CallRec &call : fn.calls) {
            const FunctionDecl *callee = gm.resolveCall(call, fn);
            if (callee == nullptr || callee->requires_exprs.empty()) {
                continue;
            }
            std::vector<std::string> held_c;
            std::vector<std::string> held_b;
            heldSets(call.held, held_c, held_b);
            for (const std::string &req : callee->requires_exprs) {
                std::string canon;
                std::vector<std::string> comps =
                    GlobalModel::splitChain(req);
                if (comps.empty()) {
                    continue;
                }
                // Parameter-qualified requirement ("shard.mu"): map the
                // parameter to the caller's argument expression.
                bool mapped = false;
                for (size_t i = 0; i < callee->params.size(); ++i) {
                    if (callee->params[i].first != comps[0]) {
                        continue;
                    }
                    mapped = true;
                    if (i >= call.args.size()) {
                        break;
                    }
                    std::string expr = call.args[i];
                    for (size_t k = 1; k < comps.size(); ++k) {
                        expr += "." + comps[k];
                    }
                    canon = gm.resolveLock(expr, fn);
                    break;
                }
                if (!mapped && comps.size() == 1) {
                    // Bare member of the callee's struct.
                    const StructDecl *cs = gm.functionStruct(*callee);
                    if (cs != nullptr && cs->field(comps[0]) != nullptr) {
                        canon = cs->canonical + "::" + comps[0];
                    }
                }
                if (canon.empty()) {
                    continue; // unresolvable: no information, no report
                }
                if (lockHeld(canon, GlobalModel::lockBase(canon), held_c,
                             held_b)) {
                    continue;
                }
                reportTo(fm, call.line, "guarded-by",
                         "call to '" + callee->display() +
                             "' requires holding " + canon +
                             " (SEVF_REQUIRES), which is not held here");
            }
        }
    }
}

// ---- lock-order pass -----------------------------------------------------

struct LockEdge {
    std::string from;
    std::string to;
    std::string file; //!< lint-root-relative site of the acquisition
    size_t line = 0;
    std::string note; //!< "" or "via call to 'f'"
};

/**
 * Build the global acquisition-order graph: a directed edge A -> B for
 * every site that acquires B while holding A, either directly or
 * transitively through a resolvable call. Only fully resolved canonical
 * names participate - ambiguity must not fabricate cycles.
 */
inline std::vector<LockEdge>
collectLockEdges(const std::vector<FileModel> &files, const GlobalModel &gm)
{
    std::vector<LockEdge> edges;
    std::set<std::pair<std::string, std::string>> seen;
    auto addEdge = [&](const std::string &from, const std::string &to,
                       const std::string &file, size_t line,
                       const std::string &note) {
        if (from.empty() || to.empty()) {
            return;
        }
        if (seen.emplace(from, to).second) {
            edges.push_back({from, to, file, line, note});
        }
    };
    for (const FileModel &fm : files) {
        if (fm.exempt_concurrency) {
            continue;
        }
        for (const FunctionDecl &fn : fm.functions) {
            for (const AcquireSite &a : fn.acquires) {
                std::string to = gm.resolveLock(a.expr, fn);
                for (const std::string &h : a.held_before) {
                    addEdge(gm.resolveLock(h, fn), to, fm.rel, a.line, "");
                }
            }
            for (const CallRec &call : fn.calls) {
                if (call.held.empty()) {
                    continue;
                }
                const FunctionDecl *callee = gm.resolveCall(call, fn);
                if (callee == nullptr) {
                    continue;
                }
                auto it = gm.transitive_acquires.find(callee);
                if (it == gm.transitive_acquires.end()) {
                    continue;
                }
                for (const std::string &to : it->second) {
                    for (const std::string &h : call.held) {
                        addEdge(gm.resolveLock(h, fn), to, fm.rel,
                                call.line,
                                " via call to '" + callee->display() +
                                    "'");
                    }
                }
            }
        }
    }
    return edges;
}

/**
 * The lock-order pass: checks every edge against the declared spec
 * (reversed 'order' entries and any 'exclusive' pairing are
 * violations) and reports every edge participating in a cycle of the
 * remaining graph. Edges matching a declared 'order A B' are never
 * themselves reported. Violations are routed through the owning file's
 * suppression handling.
 */
inline void
runLockOrderPass(std::vector<FileModel> &files, const GlobalModel &gm,
                 const LockOrderSpec &spec)
{
    std::vector<LockEdge> edges = collectLockEdges(files, gm);
    auto fileFor = [&](const std::string &rel) -> FileModel * {
        for (FileModel &fm : files) {
            if (fm.rel == rel) {
                return &fm;
            }
        }
        return nullptr;
    };
    std::set<std::pair<std::string, std::string>> spec_violations;
    for (const LockEdge &e : edges) {
        if (spec.allows(e.from, e.to)) {
            continue;
        }
        std::string why;
        if (spec.allows(e.to, e.from)) {
            why = "contradicts declared 'order " + e.to + " " + e.from +
                  "' in the lock-order spec";
        }
        for (const auto &[a, b] : spec.exclusive) {
            if ((a == e.from && b == e.to) ||
                (a == e.to && b == e.from)) {
                why = "locks are declared 'exclusive " + a + " " + b +
                      "' (never nested) in the lock-order spec";
                break;
            }
        }
        if (why.empty()) {
            continue;
        }
        spec_violations.emplace(e.from, e.to);
        if (FileModel *fm = fileFor(e.file)) {
            reportTo(*fm, e.line, "lock-order",
                     "acquiring " + e.to + " while holding " + e.from +
                         e.note + " " + why);
        }
    }
    // Cycle detection on the remaining graph (declared edges included:
    // a cycle through a declared edge is still reported on the
    // undeclared edges that close it).
    std::map<std::string, std::vector<const LockEdge *>> adj;
    for (const LockEdge &e : edges) {
        if (spec_violations.count({e.from, e.to})) {
            continue; // already reported
        }
        adj[e.from].push_back(&e);
    }
    // Iterative DFS per start node; report each offending edge once.
    std::set<const LockEdge *> reported;
    for (const LockEdge &start : edges) {
        if (spec_violations.count({start.from, start.to}) ||
            reported.count(&start) || spec.allows(start.from, start.to)) {
            continue;
        }
        // Is there a path start.to ->* start.from?
        std::vector<std::string> stack = {start.to};
        std::set<std::string> visited;
        std::map<std::string, const LockEdge *> parent_edge;
        bool cycle = start.to == start.from;
        while (!cycle && !stack.empty()) {
            std::string node = stack.back();
            stack.pop_back();
            if (!visited.insert(node).second) {
                continue;
            }
            auto it = adj.find(node);
            if (it == adj.end()) {
                continue;
            }
            for (const LockEdge *e : it->second) {
                if (parent_edge.find(e->to) == parent_edge.end()) {
                    parent_edge[e->to] = e;
                }
                if (e->to == start.from) {
                    cycle = true;
                    break;
                }
                stack.push_back(e->to);
            }
        }
        if (!cycle) {
            continue;
        }
        // Render the cycle path start.from -> start.to -> ... -> start.from.
        std::string path = start.from + " -> " + start.to;
        std::string cur = start.to;
        std::set<std::string> guard;
        while (cur != start.from && guard.insert(cur).second) {
            auto it = parent_edge.find(start.from);
            if (start.to == start.from) {
                break;
            }
            // Walk parents backwards from start.from is awkward; just
            // note the closing lock.
            (void)it;
            break;
        }
        path += " -> ... -> " + start.from;
        if (start.to == start.from) {
            path = start.from + " -> " + start.from;
        }
        reported.insert(&start);
        if (FileModel *fm = fileFor(start.file)) {
            reportTo(*fm, start.line, "lock-order",
                     "acquiring " + start.to + " while holding " +
                         start.from + start.note +
                         " creates an ordering cycle (" + path +
                         "); declare a global order in the lock-order "
                         "spec or break the nesting");
        }
    }
}

// ---- secret-flow pass ----------------------------------------------------

/** How a value became tainted inside one function. */
enum class TaintOrigin { kDirect, kInterproc };

struct SinkHit {
    size_t line = 0;
    std::string sink;
    bool interproc = false;
};

struct TaintWalk {
    std::map<std::string, TaintOrigin> tainted;
    bool return_tainted = false;
    std::vector<SinkHit> hits;
};

/**
 * Flow-sensitive taint walk over one function. Sources of taint:
 * direct calls to a secret-source function, calls to a callee the
 * interprocedural fixed point classified secret-returning, mentions of
 * an already-tainted variable, and the caller-provided @p seeds (used
 * to compute sink-forwarding parameter summaries). declassify(x, ...)
 * launders every variable it names. Sinks: the kSecretSinks names plus
 * calls that pass a tainted argument into a sink-forwarding parameter.
 */
inline TaintWalk
walkTaint(const FunctionDecl &fn, const GlobalModel &gm,
          const std::vector<std::string> &sources,
          std::map<std::string, TaintOrigin> seeds)
{
    static const std::regex assign_re("(\\w+)\\s*=(?!=)");
    static const std::regex assign_or_return_re(
        "SEVF_ASSIGN_OR_RETURN\\s*\\(\\s*[^,]*?(\\w+)\\s*,");
    TaintWalk w;
    w.tainted = std::move(seeds);
    auto mentionsTainted = [&](const std::string &text, bool *interproc) {
        bool any = false;
        for (const auto &[name, origin] : w.tainted) {
            if (containsWord(text, name)) {
                any = true;
                if (origin == TaintOrigin::kInterproc) {
                    *interproc = true;
                }
            }
        }
        return any;
    };
    size_t call_cursor = 0;
    for (const StmtRec &stmt : fn.stmts) {
        const std::string &text = stmt.text;
        if (text.find("declassify") != std::string::npos) {
            // Explicit declassification launders every tainted variable
            // named in it (the runtime audit-logs the event).
            for (auto it = w.tainted.begin(); it != w.tainted.end();) {
                it = containsWord(text, it->first) ? w.tainted.erase(it)
                                                   : std::next(it);
            }
            continue;
        }
        bool interproc = false;
        bool calls_source = std::any_of(
            sources.begin(), sources.end(), [&](const std::string &src) {
                return callsFunction(text, src);
            });
        // Calls recorded for this statement (calls and stmts are both
        // appended in statement order, so a cursor suffices).
        while (call_cursor < fn.calls.size() &&
               fn.calls[call_cursor].line < stmt.line) {
            ++call_cursor;
        }
        std::vector<const CallRec *> stmt_calls;
        for (size_t c = call_cursor;
             c < fn.calls.size() && fn.calls[c].line == stmt.line; ++c) {
            stmt_calls.push_back(&fn.calls[c]);
        }
        bool calls_secret_callee = false;
        for (const CallRec *call : stmt_calls) {
            const FunctionDecl *callee = gm.resolveCall(*call, fn);
            if (callee != nullptr && callee != &fn &&
                gm.secret_returning.count(callee)) {
                calls_secret_callee = true;
            }
        }
        bool mentions = mentionsTainted(text, &interproc);
        bool rhs_tainted = calls_source || calls_secret_callee || mentions;
        if (calls_secret_callee) {
            interproc = true;
        }
        // Named-sink check: a tainted value feeding a sink on this very
        // statement is a leak even when it is also being assigned.
        if (rhs_tainted) {
            for (const char *sink : kSecretSinks) {
                if (callsFunction(text, sink)) {
                    w.hits.push_back({stmt.line, sink, interproc});
                    break;
                }
            }
        }
        // Forwarding-sink check: a tainted argument bound to a
        // parameter the summary pass proved reaches a sink.
        for (const CallRec *call : stmt_calls) {
            const FunctionDecl *callee = gm.resolveCall(*call, fn);
            if (callee == nullptr || callee == &fn) {
                continue;
            }
            auto it = gm.sink_forwarding.find(callee);
            if (it == gm.sink_forwarding.end()) {
                continue;
            }
            bool hit = false;
            for (size_t idx : it->second) {
                if (idx >= call->args.size()) {
                    continue;
                }
                bool arg_interproc = false;
                const std::string &arg = call->args[idx];
                bool arg_tainted =
                    mentionsTainted(arg, &arg_interproc) ||
                    std::any_of(sources.begin(), sources.end(),
                                [&](const std::string &src) {
                                    return callsFunction(arg, src);
                                });
                hit = hit || arg_tainted;
            }
            if (hit) {
                w.hits.push_back({call->line, callee->display(), true});
            }
        }
        if (!rhs_tainted) {
            continue;
        }
        if (text.rfind("return", 0) == 0 &&
            (text.size() == 6 || !isIdentChar(text[6]))) {
            w.return_tainted = true;
            continue;
        }
        TaintOrigin origin =
            interproc ? TaintOrigin::kInterproc : TaintOrigin::kDirect;
        std::smatch m;
        std::string lhs;
        if (std::regex_search(text, m, assign_re)) {
            lhs = m[1].str();
        } else if (std::regex_search(text, m, assign_or_return_re)) {
            lhs = m[1].str();
        }
        if (!lhs.empty()) {
            auto it = w.tainted.find(lhs);
            if (it == w.tainted.end()) {
                w.tainted.emplace(lhs, origin);
            } else if (origin == TaintOrigin::kInterproc) {
                it->second = origin;
            }
        }
    }
    return w;
}

/**
 * Interprocedural summaries to a fixed point:
 *  - secret_returning: the function's return value is tainted;
 *  - sink_forwarding: seeding parameter i produces sink hits beyond the
 *    function's own baseline (so a function that independently leaks a
 *    source is not mistaken for a forwarder).
 */
inline void
computeSecretSummaries(const std::vector<FileModel> &files, GlobalModel &gm,
                       const std::vector<std::string> &sources)
{
    for (int iter = 0; iter < 30; ++iter) {
        bool changed = false;
        for (const FileModel &fm : files) {
            for (const FunctionDecl &fn : fm.functions) {
                TaintWalk baseline = walkTaint(fn, gm, sources, {});
                if (baseline.return_tainted &&
                    gm.secret_returning.insert(&fn).second) {
                    changed = true;
                }
                for (size_t i = 0; i < fn.params.size(); ++i) {
                    const std::string &pname = fn.params[i].first;
                    if (pname.empty() ||
                        gm.sink_forwarding[&fn].count(i) != 0) {
                        continue;
                    }
                    TaintWalk seeded = walkTaint(
                        fn, gm, sources,
                        {{pname, TaintOrigin::kDirect}});
                    if (seeded.hits.size() > baseline.hits.size()) {
                        gm.sink_forwarding[&fn].insert(i);
                        changed = true;
                    }
                }
            }
        }
        if (!changed) {
            break;
        }
    }
}

/**
 * The reporting walk: direct source-to-sink flows keep the original
 * "secret-flow" rule; any flow that crossed a function boundary (a
 * secret-returning callee or a sink-forwarding parameter) is reported
 * as "interproc-secret-flow" so suppressions stay precise.
 */
inline void
runSecretFlowPass(FileModel &fm, const GlobalModel &gm,
                  const std::vector<std::string> &sources)
{
    for (const FunctionDecl &fn : fm.functions) {
        TaintWalk w = walkTaint(fn, gm, sources, {});
        std::set<std::pair<size_t, bool>> seen;
        for (const SinkHit &h : w.hits) {
            if (!seen.emplace(h.line, h.interproc).second) {
                continue;
            }
            if (h.interproc) {
                reportTo(fm, h.line, "interproc-secret-flow",
                         "secret value flows into sink '" + h.sink +
                             "' across a function boundary without "
                             "declassify(); if this flow is reviewed and "
                             "intentional, declassify() the value first");
            } else {
                reportTo(fm, h.line, "secret-flow",
                         "secret value flows into sink '" + h.sink +
                             "' without declassify(); if this flow is "
                             "reviewed and intentional, declassify() the "
                             "value first");
            }
        }
    }
}

// ---- Root-of-trust audit -------------------------------------------------

/**
 * tools/tcb-budget.txt format, one rule per line ('#' comments):
 *
 *   max-functions N   the TCB closure may contain at most N functions
 *   max-loc N         total lines of code across the closure
 *   ban <module>      the closure must never reach the module - a file
 *                     path minus extension ("compress/gzip_lite") or a
 *                     directory prefix ("compress")
 *   ban-api <name>    calling <name> anywhere inside the closure is an
 *                     error (tcb-construct)
 *   exempt <module>   infrastructure the closure stops at wholesale
 *                     (e.g. obs, taint) without per-function
 *                     SEVF_TCB_EXEMPT annotations
 */
struct TcbBudget {
    size_t max_functions = 0; //!< 0 = unlimited
    size_t max_loc = 0;       //!< 0 = unlimited
    std::vector<std::string> banned_modules;
    std::vector<std::string> banned_apis;
    std::vector<std::string> exempt_modules;
};

inline std::optional<TcbBudget>
loadTcbBudget(const fs::path &path)
{
    std::ifstream in(path);
    if (!in) {
        return std::nullopt;
    }
    TcbBudget budget;
    std::string line;
    while (std::getline(in, line)) {
        size_t hash = line.find('#');
        if (hash != std::string::npos) {
            line.erase(hash);
        }
        std::istringstream is(line);
        std::string kind;
        std::string arg;
        if (!(is >> kind)) {
            continue;
        }
        if (kind == "max-functions") {
            is >> budget.max_functions;
        } else if (kind == "max-loc") {
            is >> budget.max_loc;
        } else if (kind == "ban" && is >> arg) {
            budget.banned_modules.push_back(arg);
        } else if (kind == "ban-api" && is >> arg) {
            budget.banned_apis.push_back(arg);
        } else if (kind == "exempt" && is >> arg) {
            budget.exempt_modules.push_back(arg);
        }
    }
    return budget;
}

/** "image/bzimage" from "image/bzimage.cc". */
inline std::string
moduleOf(const std::string &rel)
{
    return fs::path(rel).replace_extension("").generic_string();
}

/** Exact module or directory-prefix match ("compress" bans the tree). */
inline bool
moduleMatches(const std::string &module, const std::string &pattern)
{
    return module == pattern ||
           (module.size() > pattern.size() &&
            module.compare(0, pattern.size(), pattern) == 0 &&
            module[pattern.size()] == '/');
}

struct TcbFunction {
    std::string name; //!< FunctionDecl::display()
    std::string file;
    size_t line = 0;
    size_t loc = 0;
    std::string module;
};

/** The audited root of trust: everything reachable from an entry. */
struct TcbInventory {
    std::vector<std::string> entry_points;
    /** Trust-boundary functions the closure reached and stopped at. */
    std::vector<std::string> exempt;
    std::vector<TcbFunction> functions; //!< sorted (module, name, file, line)
    size_t total_functions = 0;
    size_t total_loc = 0;
};

/**
 * The TCB reachability pass: BFS over resolvable calls from every
 * SEVF_TCB entry point. SEVF_TCB_EXEMPT functions (and modules listed
 * as 'exempt' in the budget) terminate a branch - they are recorded in
 * the inventory's exempt list, never traversed. On the closure it
 * enforces the budget (tcb-budget), banned modules reported at the
 * first call site that crosses into them (tcb-reach), banned
 * constructs/APIs (tcb-construct), and call-graph cycles
 * (tcb-recursion). A SEVF_TCB_EXEMPT annotation no entry point ever
 * reaches is itself flagged (unused-suppression) so exemptions cannot
 * outlive the call edge that justified them.
 */
inline TcbInventory
runTcbAudit(std::vector<FileModel> &files, const GlobalModel &gm,
            const std::optional<TcbBudget> &budget_opt)
{
    const TcbBudget budget = budget_opt.value_or(TcbBudget{});
    TcbInventory inv;
    std::map<const FunctionDecl *, FileModel *> owner;
    std::vector<const FunctionDecl *> entries;
    for (FileModel &fm : files) {
        for (const FunctionDecl &fn : fm.functions) {
            owner[&fn] = &fm;
            if (fn.tcb_entry) {
                entries.push_back(&fn);
            }
        }
    }
    std::sort(entries.begin(), entries.end(),
              [](const FunctionDecl *a, const FunctionDecl *b) {
                  return std::tie(a->file, a->line) <
                         std::tie(b->file, b->line);
              });
    auto inExemptModule = [&](const FunctionDecl *fn) {
        std::string m = moduleOf(fn->file);
        for (const std::string &p : budget.exempt_modules) {
            if (moduleMatches(m, p)) {
                return true;
            }
        }
        return false;
    };

    struct Reach {
        const FunctionDecl *via = nullptr; //!< caller at the first reach
        size_t line = 0;
    };
    std::map<const FunctionDecl *, Reach> first_reach;
    std::set<const FunctionDecl *> closure(entries.begin(), entries.end());
    std::set<const FunctionDecl *> exempt_reached;
    std::vector<const FunctionDecl *> work(entries.begin(), entries.end());
    while (!work.empty()) {
        const FunctionDecl *fn = work.back();
        work.pop_back();
        for (const CallRec &call : fn->calls) {
            const FunctionDecl *callee = gm.resolveCall(call, *fn);
            if (callee == nullptr || callee == fn) {
                continue;
            }
            if (callee->tcb_exempt || inExemptModule(callee)) {
                exempt_reached.insert(callee);
                continue;
            }
            if (closure.insert(callee).second) {
                first_reach[callee] = {fn, call.line};
                work.push_back(callee);
            }
        }
    }

    // Inventory.
    for (const FunctionDecl *fn : entries) {
        inv.entry_points.push_back(fn->display());
    }
    for (const FunctionDecl *fn : exempt_reached) {
        inv.exempt.push_back(fn->display());
    }
    std::sort(inv.exempt.begin(), inv.exempt.end());
    inv.exempt.erase(std::unique(inv.exempt.begin(), inv.exempt.end()),
                     inv.exempt.end());
    for (const FunctionDecl *fn : closure) {
        size_t loc =
            fn->end_line >= fn->line ? fn->end_line - fn->line + 1 : 1;
        inv.functions.push_back({fn->display(), fn->file, fn->line, loc,
                                 moduleOf(fn->file)});
        inv.total_loc += loc;
    }
    inv.total_functions = closure.size();
    std::sort(inv.functions.begin(), inv.functions.end(),
              [](const TcbFunction &a, const TcbFunction &b) {
                  return std::tie(a.module, a.name, a.file, a.line) <
                         std::tie(b.module, b.name, b.file, b.line);
              });

    // Banned-module reach, reported once per boundary crossing (the
    // interior of a banned module is not re-reported).
    auto bannedOf = [&](const FunctionDecl *fn) -> const std::string * {
        std::string m = moduleOf(fn->file);
        for (const std::string &p : budget.banned_modules) {
            if (moduleMatches(m, p)) {
                return &p;
            }
        }
        return nullptr;
    };
    for (const FunctionDecl *fn : closure) {
        const std::string *ban = bannedOf(fn);
        if (ban == nullptr) {
            continue;
        }
        auto it = first_reach.find(fn);
        const FunctionDecl *caller =
            it != first_reach.end() ? it->second.via : nullptr;
        if (caller != nullptr && bannedOf(caller) != nullptr) {
            continue;
        }
        if (caller != nullptr) {
            reportTo(*owner[caller], it->second.line, "tcb-reach",
                     "TCB closure reaches banned module '" + *ban +
                         "' via call to '" + fn->display() +
                         "' - the root of trust must not include it "
                         "(tcb-budget 'ban')");
        } else {
            reportTo(*owner[fn], fn->line, "tcb-reach",
                     "TCB entry point '" + fn->display() +
                         "' lives in banned module '" + *ban + "'");
        }
    }

    // Budget, anchored at the first entry point's definition.
    if (!entries.empty()) {
        const FunctionDecl *anchor = entries.front();
        if (budget.max_functions > 0 &&
            inv.total_functions > budget.max_functions) {
            reportTo(*owner[anchor], anchor->line, "tcb-budget",
                     "TCB closure contains " +
                         std::to_string(inv.total_functions) +
                         " functions, over the budget of " +
                         std::to_string(budget.max_functions) +
                         " (tcb-budget 'max-functions'); shrink the "
                         "closure or review and raise the budget");
        }
        if (budget.max_loc > 0 && inv.total_loc > budget.max_loc) {
            reportTo(*owner[anchor], anchor->line, "tcb-budget",
                     "TCB closure spans " + std::to_string(inv.total_loc) +
                         " lines, over the budget of " +
                         std::to_string(budget.max_loc) +
                         " (tcb-budget 'max-loc'); shrink the closure "
                         "or review and raise the budget");
        }
    }

    // Banned constructs inside the closure: the root of trust must not
    // allocate dynamically or call budget-banned APIs.
    for (const FunctionDecl *fn : closure) {
        FileModel &fm = *owner[fn];
        for (const StmtRec &stmt : fn->stmts) {
            for (const char *word : {"new", "delete"}) {
                if (containsWord(stmt.text, word)) {
                    reportTo(fm, stmt.line, "tcb-construct",
                             std::string("'") + word +
                                 "' inside the TCB ('" + fn->display() +
                                 "'): the root of trust must not "
                                 "allocate dynamically");
                }
            }
            for (const char *api : {"malloc", "calloc", "realloc", "free"}) {
                if (callsFunction(stmt.text, api)) {
                    reportTo(fm, stmt.line, "tcb-construct",
                             std::string("'") + api +
                                 "()' inside the TCB ('" + fn->display() +
                                 "'): the root of trust must not "
                                 "allocate dynamically");
                }
            }
        }
        for (const CallRec &call : fn->calls) {
            for (const std::string &api : budget.banned_apis) {
                if (call.name == api) {
                    reportTo(fm, call.line, "tcb-construct",
                             "call to banned API '" + api +
                                 "' inside the TCB ('" + fn->display() +
                                 "') (tcb-budget 'ban-api')");
                }
            }
        }
    }

    // Call cycles within the closure: recursion depth would be
    // attacker-influencable, and the bootstrap runs on a fixed stack.
    std::map<const FunctionDecl *, std::vector<const FunctionDecl *>> adj;
    for (const FunctionDecl *fn : closure) {
        for (const CallRec &call : fn->calls) {
            const FunctionDecl *callee = gm.resolveCall(call, *fn);
            if (callee != nullptr && closure.count(callee) != 0) {
                adj[fn].push_back(callee);
            }
        }
    }
    for (const FunctionDecl *fn : closure) {
        std::vector<const FunctionDecl *> stack = adj[fn];
        std::set<const FunctionDecl *> seen;
        bool cycle = false;
        while (!stack.empty()) {
            const FunctionDecl *n = stack.back();
            stack.pop_back();
            if (n == fn) {
                cycle = true;
                break;
            }
            if (!seen.insert(n).second) {
                continue;
            }
            auto it = adj.find(n);
            if (it != adj.end()) {
                stack.insert(stack.end(), it->second.begin(),
                             it->second.end());
            }
        }
        if (cycle) {
            reportTo(*owner[fn], fn->line, "tcb-recursion",
                     "'" + fn->display() +
                         "' participates in a call cycle inside the TCB "
                         "- unbounded recursion; rewrite iteratively or "
                         "bound and exempt it");
        }
    }

    // Stale exemptions: an SEVF_TCB_EXEMPT nothing reaches is rot.
    for (FileModel &fm : files) {
        for (const FunctionDecl &fn : fm.functions) {
            if (fn.tcb_exempt && exempt_reached.count(&fn) == 0) {
                reportTo(fm, fn.line, "unused-suppression",
                         "SEVF_TCB_EXEMPT on '" + fn.display() +
                             "' is stale: not reached from any SEVF_TCB "
                             "entry point - remove the exemption");
            }
        }
    }
    return inv;
}

// ---- untrusted-input bounds pass -----------------------------------------

/**
 * Identifier roots of an index/length expression that stand for
 * attacker-influencable offsets. Skips numeric literals, kConstants and
 * ALL_CAPS, ::-qualified names, call expressions (a chain ending in
 * '(', e.g. file.size()), keywords/builtin types, and @p base_ptrs
 * (locals bound from .data()/.begin() - whole-container pointers, not
 * offsets).
 */
inline std::vector<std::string>
riskyRoots(const std::string &expr, const std::set<std::string> &base_ptrs)
{
    static const std::set<std::string> kSkip = {
        "sizeof", "static_cast", "reinterpret_cast", "const_cast",
        "std",    "size_t",      "u8",               "u16",
        "u32",    "u64",         "i8",               "i16",
        "i32",    "i64",         "int",              "long",
        "short",  "unsigned",    "signed",           "char",
        "bool",   "auto",        "const",            "true",
        "false",  "nullptr",     "this",             "min",
        "max",    "clamp",
    };
    std::vector<std::string> out;
    size_t i = 0;
    while (i < expr.size()) {
        if (!isIdentChar(expr[i]) ||
            (i > 0 && isIdentChar(expr[i - 1]))) {
            ++i;
            continue;
        }
        // Chain members (".len", "->len") are attributed to their root.
        size_t p = i;
        while (p > 0 && expr[p - 1] == ' ') {
            --p;
        }
        if (p > 0 && (expr[p - 1] == '.' || expr[p - 1] == ':' ||
                      (p > 1 && expr[p - 1] == '>' &&
                       expr[p - 2] == '-'))) {
            while (i < expr.size() && isIdentChar(expr[i])) {
                ++i;
            }
            continue;
        }
        size_t e = i;
        while (e < expr.size() && isIdentChar(expr[e])) {
            ++e;
        }
        std::string root = expr.substr(i, e - i);
        // Walk the member chain; a trailing '(' or '::' disqualifies.
        bool call_or_qualified = false;
        size_t j = e;
        while (true) {
            size_t k = j;
            while (k < expr.size() && expr[k] == ' ') {
                ++k;
            }
            if (k < expr.size() && expr[k] == '(') {
                call_or_qualified = true;
                break;
            }
            if (k + 1 < expr.size() && expr[k] == ':' &&
                expr[k + 1] == ':') {
                call_or_qualified = true;
                break;
            }
            if (k + 1 < expr.size() && expr[k] == '.' &&
                isIdentChar(expr[k + 1])) {
                j = k + 1;
            } else if (k + 2 < expr.size() && expr[k] == '-' &&
                       expr[k + 1] == '>' && isIdentChar(expr[k + 2])) {
                j = k + 2;
            } else {
                break;
            }
            while (j < expr.size() && isIdentChar(expr[j])) {
                ++j;
            }
        }
        i = std::max(e, j);
        if (call_or_qualified ||
            std::isdigit(static_cast<unsigned char>(root[0])) ||
            kSkip.count(root) != 0 || base_ptrs.count(root) != 0) {
            continue;
        }
        bool k_const = root.size() >= 2 && root[0] == 'k' &&
                       std::isupper(static_cast<unsigned char>(root[1]));
        bool all_caps = root.size() > 1;
        bool has_alpha = false;
        for (char c : root) {
            if (std::islower(static_cast<unsigned char>(c))) {
                all_caps = false;
            }
            if (std::isalpha(static_cast<unsigned char>(c))) {
                has_alpha = true;
            }
        }
        if (k_const || (all_caps && has_alpha)) {
            continue;
        }
        out.push_back(root);
    }
    return out;
}

/**
 * Did an earlier (or this) statement bounds-check @p ident? A guard is
 * a conditional (if/for/while) mentioning the identifier with a
 * relational comparison - '<'/'>' surviving after '->', '<<' and '>>'
 * are stripped - or any statement clamping it through min()/max()/
 * clamp(). Flow-insensitive beyond statement order, by design: the
 * pass asks "was a check even attempted", the review of its adequacy
 * is what the suppression comment records.
 */
inline bool
hasBoundsGuard(const FunctionDecl &fn, const std::string &ident,
               size_t stmt_idx)
{
    for (size_t i = 0; i <= stmt_idx && i < fn.stmts.size(); ++i) {
        const std::string &t = fn.stmts[i].text;
        if (!containsWord(t, ident)) {
            continue;
        }
        bool clamped = t.find("min(") != std::string::npos ||
                       t.find("max(") != std::string::npos ||
                       t.find("clamp(") != std::string::npos;
        if (clamped) {
            return true;
        }
        std::string tok;
        {
            size_t b = 0;
            while (b < t.size() && !isIdentChar(t[b])) {
                ++b;
            }
            size_t e = b;
            while (e < t.size() && isIdentChar(t[e])) {
                ++e;
            }
            tok = t.substr(b, e - b);
        }
        if (tok != "if" && tok != "for" && tok != "while") {
            continue;
        }
        std::string s;
        for (size_t j = 0; j < t.size(); ++j) {
            if (t[j] == '-' && j + 1 < t.size() && t[j + 1] == '>') {
                ++j;
                continue;
            }
            if ((t[j] == '<' || t[j] == '>') && j + 1 < t.size() &&
                t[j + 1] == t[j]) {
                ++j;
                continue;
            }
            s.push_back(t[j]);
        }
        if (s.find('<') != std::string::npos ||
            s.find('>') != std::string::npos) {
            return true;
        }
    }
    return false;
}

/**
 * The untrusted-input bounds pass, scoped to SEVF_UNTRUSTED_INPUT
 * functions: every subscript, span/copy call (subspan/first/last/
 * memcpy/memmove/copy) and .data()/.begin() pointer arithmetic whose
 * offset/length roots lack a preceding bounds-check idiom is flagged.
 * Audited-and-accepted sites carry "sevf_lint: allow(untrusted-bounds)"
 * with a comment explaining why the arithmetic is safe.
 */
inline void
runUntrustedBoundsPass(FileModel &fm)
{
    static const char *const kCopyCalls[] = {
        "memcpy", "memmove", "copy", "copy_n", "subspan", "first", "last",
    };
    for (const FunctionDecl &fn : fm.functions) {
        if (!fn.untrusted_input) {
            continue;
        }
        std::set<std::string> base_ptrs;
        // Pointer-typed parameters are bases, not offsets: the risky
        // quantities are the integral offsets/lengths applied to them.
        // Locals formed by pointer arithmetic stay risky on purpose.
        base_ptrs.insert(fn.pointer_params.begin(),
                         fn.pointer_params.end());
        static const std::regex base_re(
            "(\\w+)\\s*=\\s*[\\w.>-]*(?:data|begin|end)\\s*\\(\\s*\\)");
        for (const StmtRec &stmt : fn.stmts) {
            auto it = std::sregex_iterator(stmt.text.begin(),
                                           stmt.text.end(), base_re);
            for (; it != std::sregex_iterator(); ++it) {
                base_ptrs.insert((*it)[1].str());
            }
        }
        std::set<std::pair<size_t, std::string>> reported;
        for (size_t si = 0; si < fn.stmts.size(); ++si) {
            const StmtRec &stmt = fn.stmts[si];
            const std::string &text = stmt.text;
            std::vector<std::pair<std::string, std::string>> sites;
            // Subscripts: '[' preceded by an identifier/')'/']'.
            for (size_t p = 0; p < text.size(); ++p) {
                if (text[p] != '[') {
                    continue;
                }
                size_t q = p;
                while (q > 0 && text[q - 1] == ' ') {
                    --q;
                }
                if (q == 0 || (!isIdentChar(text[q - 1]) &&
                               text[q - 1] != ')' && text[q - 1] != ']')) {
                    continue;
                }
                int depth = 0;
                size_t r = p;
                for (; r < text.size(); ++r) {
                    if (text[r] == '[') {
                        ++depth;
                    } else if (text[r] == ']' && --depth == 0) {
                        break;
                    }
                }
                if (r >= text.size()) {
                    continue;
                }
                sites.emplace_back(text.substr(p + 1, r - p - 1),
                                   "a subscript");
                p = r;
            }
            // Span/copy calls: roots of the whole argument list.
            for (const char *name : kCopyCalls) {
                size_t pos = 0;
                std::string fname = name;
                while ((pos = text.find(fname, pos)) != std::string::npos) {
                    bool left_ok = pos == 0 || !isIdentChar(text[pos - 1]);
                    size_t after = pos + fname.size();
                    while (after < text.size() && text[after] == ' ') {
                        ++after;
                    }
                    if (!left_ok || after >= text.size() ||
                        text[after] != '(' ||
                        (pos + fname.size() < text.size() &&
                         isIdentChar(text[pos + fname.size()]))) {
                        ++pos;
                        continue;
                    }
                    size_t close = matchParenAt(text, after);
                    if (close != std::string::npos) {
                        sites.emplace_back(
                            text.substr(after + 1, close - after - 1),
                            std::string("a call to '") + name + "'");
                    }
                    pos = after;
                }
            }
            // Pointer arithmetic on a container's raw storage.
            for (const char *anchor : {".data()", ".begin()"}) {
                size_t pos = 0;
                std::string a = anchor;
                while ((pos = text.find(a, pos)) != std::string::npos) {
                    size_t after = pos + a.size();
                    while (after < text.size() && text[after] == ' ') {
                        ++after;
                    }
                    if (after < text.size() &&
                        (text[after] == '+' || text[after] == '-')) {
                        size_t end = after;
                        int depth = 0;
                        for (; end < text.size(); ++end) {
                            char c = text[end];
                            if (c == '(' || c == '[') {
                                ++depth;
                            } else if (c == ')' || c == ']') {
                                if (--depth < 0) {
                                    break;
                                }
                            } else if (c == ',' && depth == 0) {
                                break;
                            }
                        }
                        sites.emplace_back(
                            text.substr(after + 1, end - after - 1),
                            "pointer arithmetic on raw storage");
                    }
                    pos = after;
                }
            }
            for (const auto &[expr, kind] : sites) {
                for (const std::string &root :
                     riskyRoots(expr, base_ptrs)) {
                    if (hasBoundsGuard(fn, root, si)) {
                        continue;
                    }
                    if (reported.emplace(stmt.line, root).second) {
                        reportTo(fm, stmt.line, "untrusted-bounds",
                                 "'" + root +
                                     "' derives from untrusted input and "
                                     "is used in " + kind +
                                     " without a preceding bounds check "
                                     "in '" + fn.display() + "'");
                    }
                }
            }
        }
    }
}

// ---- JSON rendering ------------------------------------------------------

inline std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        switch (c) {
        case '"':
            out += "\\\"";
            break;
        case '\\':
            out += "\\\\";
            break;
        case '\n':
            out += "\\n";
            break;
        case '\t':
            out += "\\t";
            break;
        default:
            if (static_cast<unsigned char>(c) < 0x20) {
                std::ostringstream os;
                os << "\\u00" << std::hex << std::setw(2)
                   << std::setfill('0')
                   << static_cast<int>(static_cast<unsigned char>(c));
                out += os.str();
            } else {
                out.push_back(c);
            }
        }
    }
    return out;
}

/**
 * The per-module TCB inventory as pretty-printed JSON with fully
 * deterministic ordering - this is the artifact CI diffs against
 * tools/tcb-baseline.json, so any closure change is a reviewable hunk.
 * @p indent prefixes every line (for embedding in a larger document).
 */
inline std::string
renderTcbJson(const TcbInventory &inv, const std::string &indent = "")
{
    std::ostringstream os;
    auto strArray = [&](const char *key,
                        const std::vector<std::string> &values,
                        const char *trailer) {
        os << indent << "  \"" << key << "\": [";
        for (size_t i = 0; i < values.size(); ++i) {
            os << (i ? ", " : "") << "\"" << jsonEscape(values[i]) << "\"";
        }
        os << "]" << trailer << "\n";
    };
    os << indent << "{\n";
    strArray("entry_points", inv.entry_points, ",");
    strArray("exempt", inv.exempt, ",");
    os << indent << "  \"total_functions\": " << inv.total_functions
       << ",\n";
    os << indent << "  \"total_loc\": " << inv.total_loc << ",\n";
    os << indent << "  \"modules\": [";
    size_t i = 0;
    bool first_module = true;
    while (i < inv.functions.size()) {
        size_t j = i;
        size_t loc = 0;
        while (j < inv.functions.size() &&
               inv.functions[j].module == inv.functions[i].module) {
            loc += inv.functions[j].loc;
            ++j;
        }
        os << (first_module ? "\n" : ",\n");
        first_module = false;
        os << indent << "    {\n";
        os << indent << "      \"module\": \""
           << jsonEscape(inv.functions[i].module) << "\",\n";
        os << indent << "      \"functions\": " << (j - i) << ",\n";
        os << indent << "      \"loc\": " << loc << ",\n";
        os << indent << "      \"members\": [\n";
        for (size_t k = i; k < j; ++k) {
            const TcbFunction &f = inv.functions[k];
            os << indent << "        {\"name\": \"" << jsonEscape(f.name)
               << "\", \"file\": \"" << jsonEscape(f.file)
               << "\", \"line\": " << f.line << ", \"loc\": " << f.loc
               << "}" << (k + 1 < j ? "," : "") << "\n";
        }
        os << indent << "      ]\n";
        os << indent << "    }";
        i = j;
    }
    os << (first_module ? "]" : "\n" + indent + "  ]") << "\n";
    os << indent << "}";
    return os.str();
}

// ---- Per-file legacy rules -----------------------------------------------

inline void
checkHeaderGuard(FileModel &fm)
{
    std::string stem =
        fs::path(fm.rel).replace_extension("").generic_string();
    std::string expected = "SEVF_" + upperIdent(stem) + "_H_";
    size_t ifndef_line = 0;
    std::string got;
    for (size_t i = 0; i < fm.text.scrubbed.size(); ++i) {
        const std::string &line = fm.text.scrubbed[i];
        size_t pos = line.find("#ifndef ");
        if (pos != std::string::npos) {
            std::istringstream is(line.substr(pos + 8));
            is >> got;
            ifndef_line = i + 1;
            break;
        }
    }
    if (ifndef_line == 0) {
        reportTo(fm, 1, "header-guard",
                 "missing include guard (expected " + expected + ")");
        return;
    }
    if (got != expected) {
        reportTo(fm, ifndef_line, "header-guard",
                 "guard is " + got + ", expected " + expected);
        return;
    }
    bool defined = false;
    for (const std::string &line : fm.text.scrubbed) {
        if (line.find("#define " + expected) != std::string::npos) {
            defined = true;
            break;
        }
    }
    if (!defined) {
        reportTo(fm, ifndef_line, "header-guard",
                 "guard " + expected + " is never #defined");
    }
}

/** Quoted includes in file order: (line number, include path). */
inline std::vector<std::pair<size_t, std::string>>
quotedIncludes(const FileText &text)
{
    static const std::regex re("^\\s*#\\s*include\\s+\"([^\"]+)\"");
    std::vector<std::pair<size_t, std::string>> out;
    for (size_t i = 0; i < text.raw.size(); ++i) {
        std::smatch m;
        if (std::regex_search(text.raw[i], m, re)) {
            out.emplace_back(i + 1, m[1].str());
        }
    }
    return out;
}

inline void
checkIncludes(FileModel &fm, const fs::path &root)
{
    for (const auto &[line, inc] : quotedIncludes(fm.text)) {
        if (inc.find("..") != std::string::npos) {
            reportTo(fm, line, "include-path",
                     "\"" + inc + "\" uses a parent-relative path");
            continue;
        }
        if (inc.find('/') == std::string::npos) {
            reportTo(fm, line, "include-path",
                     "\"" + inc +
                         "\" is not project-relative (expected "
                         "\"<module>/<file>\")");
            continue;
        }
        if (!fs::exists(root / inc)) {
            reportTo(fm, line, "include-path",
                     "\"" + inc + "\" does not exist under " +
                         root.generic_string());
        }
    }
}

inline void
checkBannedConstructs(FileModel &fm)
{
    static const std::regex throw_re("\\bthrow\\b");
    static const std::regex rand_re("\\brand\\s*\\(");
    static const std::regex new_array_re("\\bnew\\b[^;({]*\\[");
    static const std::regex cout_re("\\bstd::cout\\b");
    bool cout_allowed = fm.rel.rfind("stats/", 0) == 0;
    for (size_t i = 0; i < fm.text.scrubbed.size(); ++i) {
        const std::string &line = fm.text.scrubbed[i];
        if (std::regex_search(line, throw_re)) {
            reportTo(fm, i + 1, "banned-construct",
                     "'throw' is banned on the boot path (use "
                     "Status/Result)");
        }
        if (std::regex_search(line, rand_re)) {
            reportTo(fm, i + 1, "banned-construct",
                     "'rand()' is banned (use base/rng.h for "
                     "deterministic streams)");
        }
        if (std::regex_search(line, new_array_re)) {
            reportTo(fm, i + 1, "banned-construct",
                     "raw 'new[]' is banned (use ByteVec/std::vector)");
        }
        if (!cout_allowed && std::regex_search(line, cout_re)) {
            reportTo(fm, i + 1, "banned-construct",
                     "'std::cout' outside stats/ (use base/logging.h)");
        }
    }
}

inline void
checkPairing(FileModel &fm, const fs::path &root)
{
    fs::path header = fs::path(fm.path).replace_extension(".h");
    if (!fs::exists(header)) {
        return; // implementation-only file (e.g. core/strategies.cc)
    }
    std::string expected = fs::relative(header, root).generic_string();
    auto incs = quotedIncludes(fm.text);
    if (incs.empty() || incs.front().second != expected) {
        reportTo(fm, incs.empty() ? 1 : incs.front().first, "cc-h-pairing",
                 "first include must be the paired header \"" + expected +
                     "\"");
    }
}

/**
 * Heuristic, matched to the project brace style (function bodies open
 * with "{" in column 0): inside each body, a variable declared
 * `Result<...> name` must appear in a guard expression - name.isOk(),
 * name.valueOr(, name.errorOr( - before name.value() or name.take().
 */
inline void
checkUnguardedResult(FileModel &fm)
{
    static const std::regex decl_re(
        "\\bResult\\s*<[^;{}()]*>\\s+(\\w+)\\s*[=;]");
    size_t body_start = 0; // 0 = not inside a body
    std::vector<std::string> decls;
    std::vector<std::string> guarded;
    for (size_t i = 0; i < fm.text.scrubbed.size(); ++i) {
        const std::string &line = fm.text.scrubbed[i];
        if (line == "{") {
            body_start = i + 1;
            decls.clear();
            guarded.clear();
            continue;
        }
        if (line == "}") {
            body_start = 0;
            continue;
        }
        if (body_start == 0) {
            continue;
        }
        std::smatch m;
        std::string rest = line;
        while (std::regex_search(rest, m, decl_re)) {
            decls.push_back(m[1].str());
            rest = m.suffix().str();
        }
        for (const std::string &name : decls) {
            if (line.find(name + ".isOk(") != std::string::npos ||
                line.find(name + ".valueOr(") != std::string::npos ||
                line.find(name + ".errorOr(") != std::string::npos) {
                guarded.push_back(name);
            }
        }
        for (const std::string &name : decls) {
            bool is_guarded = std::find(guarded.begin(), guarded.end(),
                                        name) != guarded.end();
            if (is_guarded) {
                continue;
            }
            if (line.find(name + ".value(") != std::string::npos ||
                line.find(name + ".take(") != std::string::npos) {
                reportTo(fm, i + 1, "unguarded-result",
                         "Result '" + name +
                             "' dereferenced without a prior isOk()/"
                             "valueOr()/errorOr() guard in this function");
            }
        }
    }
}

/**
 * Runs after every other pass: any "sevf_lint: allow(rule)" marker that
 * did not suppress a violation is itself an error. Stale markers are
 * how suppressions rot into blanket permission.
 */
inline void
checkUnusedSuppressions(FileModel &fm)
{
    static const std::regex marker_re("sevf_lint:\\s*allow\\(([\\w-]+)\\)");
    for (size_t i = 0; i < fm.text.raw.size(); ++i) {
        std::string rest = fm.text.raw[i];
        std::smatch m;
        while (std::regex_search(rest, m, marker_re)) {
            std::string rule = m[1].str();
            bool used =
                std::find(fm.used_markers.begin(), fm.used_markers.end(),
                          std::make_pair(i + 1, rule)) !=
                fm.used_markers.end();
            if (!used) {
                fm.violations.push_back(
                    {fm.rel, i + 1, "unused-suppression",
                     "suppression 'allow(" + rule +
                         ")' matches no violation on this or the next "
                         "line — remove it"});
            }
            rest = m.suffix().str();
        }
    }
}

// ---- Orchestration -------------------------------------------------------

struct Options {
    fs::path root;
    std::vector<std::string> extra_secret_sources;
    std::optional<LockOrderSpec> lock_order_spec;
    /** TCB budget; when unset, <root>/tcb-budget.txt is auto-loaded if
     *  present (how fixture trees carry their budget). */
    std::optional<TcbBudget> tcb_budget;
    /** Worker threads for the file-parallel phases; 0 = hardware. */
    unsigned jobs = 1;
};

struct PassStat {
    std::string name;
    long long ns = 0;
};

struct RunResult {
    std::vector<Violation> violations;
    std::vector<PassStat> stats;
    TcbInventory tcb;
};

/**
 * Machine-readable run report: the sorted violations plus the TCB
 * inventory in one document, so CI diffs findings and closure with a
 * single code path (--format=json in the CLI).
 */
inline std::string
renderReportJson(const RunResult &result)
{
    std::ostringstream os;
    os << "{\n  \"violations\": [";
    for (size_t i = 0; i < result.violations.size(); ++i) {
        const Violation &v = result.violations[i];
        os << (i ? ",\n" : "\n");
        os << "    {\"file\": \"" << jsonEscape(v.file)
           << "\", \"line\": " << v.line << ", \"rule\": \""
           << jsonEscape(v.rule) << "\", \"message\": \""
           << jsonEscape(v.message) << "\"}";
    }
    os << (result.violations.empty() ? "]" : "\n  ]") << ",\n";
    os << "  \"tcb\": " << renderTcbJson(result.tcb, "  ").substr(2)
       << "\n}\n";
    return os.str();
}

/**
 * Full lint run over every .h/.cc under opts.root. File-local phases
 * (parse, per-file rules, guarded-by, secret-flow, suppressions) fan
 * out over a base::ThreadPool - the lint dogfoods the pool it lints;
 * the global phases (model building, lock-order) are serial. Each
 * phase's wall time is recorded in RunResult::stats.
 */
inline RunResult
runLint(const Options &opts)
{
    RunResult out;
    std::vector<fs::path> paths;
    for (const auto &entry :
         fs::recursive_directory_iterator(opts.root)) {
        if (!entry.is_regular_file()) {
            continue;
        }
        fs::path p = entry.path();
        if (p.extension() == ".h" || p.extension() == ".cc") {
            paths.push_back(p);
        }
    }
    std::sort(paths.begin(), paths.end());
    std::vector<FileModel> files(paths.size());

    unsigned jobs = opts.jobs == 0 ? base::hardwareThreads() : opts.jobs;
    jobs = std::max<u64>(
        1, std::min<u64>(jobs, paths.empty() ? 1 : paths.size()));
    base::ThreadPool pool(static_cast<unsigned>(jobs));
    auto forEachFile = [&](auto &&body) {
        pool.parallelFor(0, files.size(), 1, [&](u64 b, u64 e) {
            for (u64 i = b; i < e; ++i) {
                body(files[i]);
            }
        });
    };
    auto timed = [&](const char *name, auto &&body) {
        auto t0 = std::chrono::steady_clock::now();
        body();
        out.stats.push_back(
            {name, std::chrono::duration_cast<std::chrono::nanoseconds>(
                       std::chrono::steady_clock::now() - t0)
                       .count()});
    };

    std::vector<std::string> sources(std::begin(kDefaultSecretSources),
                                     std::end(kDefaultSecretSources));
    sources.insert(sources.end(), opts.extra_secret_sources.begin(),
                   opts.extra_secret_sources.end());

    timed("parse", [&] {
        pool.parallelFor(0, files.size(), 1, [&](u64 b, u64 e) {
            for (u64 i = b; i < e; ++i) {
                FileModel &fm = files[i];
                fm.path = paths[i];
                fm.rel =
                    fs::relative(paths[i], opts.root).generic_string();
                fm.exempt_concurrency =
                    fm.rel == "base/mutex.h" ||
                    fm.rel == "base/thread_annotations.h";
                std::optional<FileText> text = loadFile(paths[i]);
                if (!text) {
                    fm.violations.push_back({fm.rel, 0, "io",
                                             "could not read file"});
                    continue;
                }
                fm.loaded = true;
                fm.text = std::move(*text);
                FileParser(fm).parse();
            }
        });
    });

    timed("file-rules", [&] {
        forEachFile([&](FileModel &fm) {
            if (!fm.loaded) {
                return;
            }
            if (fm.path.extension() == ".h") {
                checkHeaderGuard(fm);
            }
            checkIncludes(fm, opts.root);
            checkBannedConstructs(fm);
            if (fm.path.extension() == ".cc") {
                checkPairing(fm, opts.root);
                checkUnguardedResult(fm);
            }
        });
    });

    GlobalModel gm;
    std::vector<GuardedField> guarded;
    timed("model", [&] {
        gm = buildGlobalModel(files);
        computeSecretSummaries(files, gm, sources);
        guarded = collectGuardedFields(files);
    });

    timed("guarded-by", [&] {
        forEachFile([&](FileModel &fm) {
            if (fm.loaded) {
                runGuardedByPass(fm, gm, guarded);
            }
        });
    });

    timed("secret-flow", [&] {
        forEachFile([&](FileModel &fm) {
            if (fm.loaded) {
                runSecretFlowPass(fm, gm, sources);
            }
        });
    });

    timed("lock-order", [&] {
        runLockOrderPass(files, gm,
                         opts.lock_order_spec.value_or(LockOrderSpec{}));
    });

    std::optional<TcbBudget> budget = opts.tcb_budget;
    if (!budget) {
        budget = loadTcbBudget(opts.root / "tcb-budget.txt");
    }
    timed("tcb-audit", [&] { out.tcb = runTcbAudit(files, gm, budget); });

    timed("untrusted-bounds", [&] {
        forEachFile([&](FileModel &fm) {
            if (fm.loaded) {
                runUntrustedBoundsPass(fm);
            }
        });
    });

    timed("suppressions", [&] {
        forEachFile([&](FileModel &fm) {
            if (fm.loaded) {
                checkUnusedSuppressions(fm);
            }
        });
    });

    for (FileModel &fm : files) {
        out.violations.insert(out.violations.end(),
                              fm.violations.begin(), fm.violations.end());
    }
    std::sort(out.violations.begin(), out.violations.end(),
              [](const Violation &a, const Violation &b) {
                  return std::tie(a.file, a.line, a.rule, a.message) <
                         std::tie(b.file, b.line, b.rule, b.message);
              });
    return out;
}

} // namespace sevf::lint

#endif // SEVF_TOOLS_SEVF_LINT_ENGINE_H_
