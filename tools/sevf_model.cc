/**
 * @file
 * Exhaustive model check of the SNP launch automaton.
 *
 * The launch-ordering property (no UPDATE behind the attested
 * measurement, no report before FINISH, ...) is enforced three times in
 * this codebase: by the Psp device model's own checks, by the
 * check::LaunchProtocol automaton the live monitor runs, and by the
 * abstract transition model in this tool. This checker explores every
 * reachable interleaving of launch commands across concurrent guests and
 * cross-checks all three against each other:
 *
 *  - Phase 1 (reachability): BFS over the abstract per-slot state space
 *    {U, S0, SP, F0, FP}^G to --depth, deduplicating states. Every
 *    discovered edge's witness path is replayed against a fresh
 *    check::LaunchProtocol AND a fresh live Psp + GuestMemory per
 *    guest, verifying the accept/reject verdicts agree step by step.
 *
 *  - Phase 2 (path sweep): every command sequence up to --sweep deep
 *    (no dedup) is replayed the same way, catching history-dependent
 *    behavior the state abstraction could mask. Each clean replay also
 *    passes the device's CommandLog through check::checkCommandLog.
 *
 * A divergence prints a counterexample trace (the full command sequence
 * with all three verdicts per step) and fails the run. --mutant seeds a
 * known protocol hole into the abstract model; with --expect-divergence
 * the run fails unless the hole is caught, which is how ctest keeps the
 * checker itself honest.
 */
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <deque>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "check/protocol.h"
#include "memory/guest_memory.h"
#include "psp/key_server.h"
#include "psp/psp.h"

namespace {

using sevf::Gpa;
using sevf::Status;
using sevf::u32;
using sevf::u64;
using sevf::kPageSize;
using sevf::check::PspCommand;

/** Abstract per-guest launch state. */
enum class Slot : unsigned char {
    kU,  //!< no LAUNCH_START yet
    kS0, //!< started, zero updates
    kSP, //!< started, >= 1 update
    kF0, //!< finished, zero updates
    kFP, //!< finished, >= 1 update
};

const char *
slotName(Slot s)
{
    switch (s) {
      case Slot::kU: return "U";
      case Slot::kS0: return "S0";
      case Slot::kSP: return "SP";
      case Slot::kF0: return "F0";
      case Slot::kFP: return "FP";
    }
    return "?";
}

constexpr PspCommand kCommands[] = {
    PspCommand::kLaunchStart,      PspCommand::kLaunchUpdateData,
    PspCommand::kLaunchUpdateVmsa, PspCommand::kLaunchMeasure,
    PspCommand::kLaunchFinish,     PspCommand::kReportRequest,
};
constexpr int kNumCommands = 6;

/** One abstract action: a launch command aimed at a guest slot. */
struct Action {
    int slot;
    PspCommand cmd;
};

/**
 * Known protocol holes seedable into the abstract model. Each one is a
 * real attack from the launch-ordering literature; the checker must
 * catch every one of them as a divergence against the device/automaton.
 */
enum class Mutant {
    kNone,
    kUpdateAfterFinish,   //!< host extends memory behind the measurement
    kMeasureBeforeUpdate, //!< digest over nothing attests nothing
    kReportBeforeFinish,  //!< report over an unlocked measurement
    kDoubleFinish,        //!< FINISH is not idempotent in the spec
    kRestartLaunchedGuest,//!< re-LAUNCH_START resets a live context
};

const struct {
    Mutant mutant;
    const char *name;
} kMutants[] = {
    {Mutant::kUpdateAfterFinish, "update-after-finish"},
    {Mutant::kMeasureBeforeUpdate, "measure-before-update"},
    {Mutant::kReportBeforeFinish, "report-before-finish"},
    {Mutant::kDoubleFinish, "double-finish"},
    {Mutant::kRestartLaunchedGuest, "restart-launched-guest"},
};

struct ModelStep {
    bool legal;
    Slot next; //!< == current state when !legal
};

/** The abstract transition relation (perturbed by @p mutant). */
ModelStep
modelStep(Slot s, PspCommand cmd, Mutant mutant)
{
    bool started = s != Slot::kU;
    bool finished = s == Slot::kF0 || s == Slot::kFP;
    bool updated = s == Slot::kSP || s == Slot::kFP;

    switch (cmd) {
      case PspCommand::kLaunchStart:
        if (started && mutant != Mutant::kRestartLaunchedGuest) {
            return {false, s};
        }
        return {true, Slot::kS0};
      case PspCommand::kLaunchUpdateData:
      case PspCommand::kLaunchUpdateVmsa:
        if (!started || (finished && mutant != Mutant::kUpdateAfterFinish)) {
            return {false, s};
        }
        return {true, finished ? Slot::kFP : Slot::kSP};
      case PspCommand::kLaunchMeasure:
        if (!started ||
            (!updated && mutant != Mutant::kMeasureBeforeUpdate)) {
            return {false, s};
        }
        return {true, s};
      case PspCommand::kLaunchFinish:
        if (!started || (finished && mutant != Mutant::kDoubleFinish)) {
            return {false, s};
        }
        return {true, updated ? Slot::kFP : Slot::kF0};
      case PspCommand::kReportRequest:
        if (!started ||
            (!finished && mutant != Mutant::kReportBeforeFinish)) {
            return {false, s};
        }
        return {true, s};
    }
    return {false, s};
}

/** Per-step verdicts of one replayed counterexample candidate. */
struct StepTrace {
    Action action;
    bool model_legal;
    bool protocol_legal;
    std::optional<bool> device_accepted; //!< absent: not device-expressible
    std::string divergence; //!< empty when the three verdicts agree
};

struct ReplayResult {
    std::vector<StepTrace> steps;
    std::string divergence; //!< first divergence, "" for a clean replay
};

constexpr u64 kGuestPages = 48; //!< per-guest memory; bounds path length
constexpr u64 kGuestMemBytes = kGuestPages * kPageSize;

/**
 * Replay @p path against a fresh check::LaunchProtocol and a fresh live
 * Psp with one GuestMemory per slot, cross-checking every verdict
 * against the abstract model. The protocol automaton addresses slot g
 * as handle g+1; the device allocates real handles at LAUNCH_START and
 * unstarted slots probe with the never-allocated handle 0.
 */
ReplayResult
replay(const std::vector<Action> &path, int guests, Mutant mutant)
{
    ReplayResult result;
    sevf::psp::KeyServer kds;
    sevf::psp::Psp psp("model-chip", kds, /*seed=*/7);
    sevf::check::LaunchProtocol protocol;

    std::vector<std::unique_ptr<sevf::memory::GuestMemory>> mems;
    std::vector<sevf::psp::GuestHandle> handles(guests, 0);
    std::vector<u64> next_page(guests, 0);
    std::vector<Slot> model(guests, Slot::kU);
    for (int g = 0; g < guests; ++g) {
        mems.push_back(std::make_unique<sevf::memory::GuestMemory>(
            kGuestMemBytes, /*spa_base=*/g * kGuestMemBytes,
            /*asid=*/static_cast<u32>(g + 1)));
    }

    for (const Action &a : path) {
        StepTrace step;
        step.action = a;
        ModelStep m = modelStep(model[a.slot], a.cmd, mutant);
        step.model_legal = m.legal;

        u32 proto_handle = static_cast<u32>(a.slot + 1);
        step.protocol_legal = protocol.command(a.cmd, proto_handle).isOk();

        // Drive the live device. A LAUNCH_START on an already-started
        // slot is the one action the device cannot express: it mints
        // handles itself, so "reuse this handle" has no mailbox
        // encoding. The protocol automaton still rules on it above.
        bool device_expressible =
            !(a.cmd == PspCommand::kLaunchStart && model[a.slot] != Slot::kU);
        if (device_expressible) {
            sevf::memory::GuestMemory &mem = *mems[a.slot];
            sevf::psp::GuestHandle h = handles[a.slot];
            bool accepted = false;
            switch (a.cmd) {
              case PspCommand::kLaunchStart: {
                  auto r = psp.launchStart(mem, /*policy=*/0x30000);
                  accepted = r.isOk();
                  if (r.isOk()) {
                      handles[a.slot] = *r;
                  }
                  break;
              }
              case PspCommand::kLaunchUpdateData: {
                  Gpa gpa = next_page[a.slot] * kPageSize;
                  Status s = psp.launchUpdateData(h, mem, gpa, kPageSize);
                  accepted = s.isOk();
                  if (accepted) {
                      ++next_page[a.slot]; // page is now guest-owned
                  }
                  break;
              }
              case PspCommand::kLaunchUpdateVmsa: {
                  Gpa gpa = next_page[a.slot] * kPageSize;
                  Status s = psp.launchUpdateVmsa(h, mem, /*vcpu=*/0, gpa);
                  accepted = s.isOk();
                  if (accepted) {
                      ++next_page[a.slot];
                  }
                  break;
              }
              case PspCommand::kLaunchMeasure:
                accepted = psp.launchMeasure(h).isOk();
                break;
              case PspCommand::kLaunchFinish:
                accepted = psp.launchFinish(h).isOk();
                break;
              case PspCommand::kReportRequest:
                accepted =
                    psp.guestRequestReport(h, sevf::psp::ReportData{})
                        .isOk();
                break;
            }
            step.device_accepted = accepted;
        }

        if (step.model_legal != step.protocol_legal) {
            step.divergence =
                std::string("abstract model says ") +
                (step.model_legal ? "LEGAL" : "ILLEGAL") +
                " but check::LaunchProtocol says " +
                (step.protocol_legal ? "LEGAL" : "ILLEGAL");
        } else if (step.device_accepted &&
                   *step.device_accepted != step.model_legal) {
            step.divergence =
                std::string("abstract model says ") +
                (step.model_legal ? "LEGAL" : "ILLEGAL") +
                " but the Psp device model " +
                (*step.device_accepted ? "ACCEPTED" : "REJECTED") +
                " the command";
        }

        if (m.legal) {
            model[a.slot] = m.next;
        }
        bool diverged = !step.divergence.empty();
        result.steps.push_back(std::move(step));
        if (diverged) {
            result.divergence = result.steps.back().divergence;
            return result;
        }
    }

    // Clean path: the device's own command log must replay cleanly
    // through the offline checker, and started slots must agree with
    // the abstract update counter.
    Status log_ok = sevf::check::checkCommandLog(psp.commandLog().records());
    if (!log_ok.isOk()) {
        result.divergence =
            "checkCommandLog rejected the device's own log: " +
            std::string(log_ok.message());
        return result;
    }
    for (int g = 0; g < guests; ++g) {
        if (model[g] == Slot::kU) {
            continue;
        }
        auto pages = psp.measuredPageCount(handles[g]);
        if (!pages.isOk()) {
            result.divergence = "measuredPageCount failed for a slot the "
                                "model considers started";
            return result;
        }
        bool model_updated = model[g] == Slot::kSP || model[g] == Slot::kFP;
        if ((*pages > 0) != model_updated) {
            result.divergence =
                "device measured " + std::to_string(*pages) +
                " pages for guest slot " + std::to_string(g) +
                " but the abstract model is in state " +
                slotName(model[g]);
            return result;
        }
    }
    return result;
}

void
printCounterexample(const ReplayResult &r, int guests)
{
    std::fprintf(stderr,
                 "counterexample (%d guest slot%s, %zu steps):\n", guests,
                 guests == 1 ? "" : "s", r.steps.size());
    for (size_t i = 0; i < r.steps.size(); ++i) {
        const StepTrace &s = r.steps[i];
        const char *device = "n/a (not device-expressible)";
        if (s.device_accepted) {
            device = *s.device_accepted ? "ACCEPTED" : "REJECTED";
        }
        std::fprintf(stderr,
                     "  %2zu. %-18s slot %d | model=%s protocol=%s "
                     "device=%s\n",
                     i + 1, sevf::check::pspCommandName(s.action.cmd),
                     s.action.slot, s.model_legal ? "LEGAL" : "ILLEGAL",
                     s.protocol_legal ? "LEGAL" : "ILLEGAL", device);
        if (!s.divergence.empty()) {
            std::fprintf(stderr, "      ^ DIVERGENCE: %s\n",
                         s.divergence.c_str());
        }
    }
    if (!r.steps.empty() && r.steps.back().divergence.empty()) {
        std::fprintf(stderr, "      ^ DIVERGENCE after clean replay: %s\n",
                     r.divergence.c_str());
    }
}

struct Stats {
    u64 states = 0;
    u64 edges = 0;
    u64 paths = 0;
    u64 divergences = 0;
};

u64
encode(const std::vector<Slot> &state)
{
    u64 code = 0;
    for (Slot s : state) {
        code = code * 5 + static_cast<u64>(s);
    }
    return code;
}

/**
 * Phase 1: dedup BFS over abstract states. Every edge out of every
 * reachable state is cross-checked by replaying its witness path.
 * Returns false on the first divergence (after printing it).
 */
bool
bfsReachability(int guests, int depth, Mutant mutant, Stats &stats)
{
    struct Node {
        std::vector<Slot> state;
        std::vector<Action> witness;
    };
    std::map<u64, bool> seen;
    std::deque<Node> frontier;
    frontier.push_back({std::vector<Slot>(guests, Slot::kU), {}});
    seen[encode(frontier.front().state)] = true;
    stats.states = 1;

    while (!frontier.empty()) {
        Node node = std::move(frontier.front());
        frontier.pop_front();
        if (static_cast<int>(node.witness.size()) >= depth) {
            continue;
        }
        for (int g = 0; g < guests; ++g) {
            for (PspCommand cmd : kCommands) {
                Action a{g, cmd};
                std::vector<Action> path = node.witness;
                path.push_back(a);
                ++stats.edges;
                ReplayResult r = replay(path, guests, mutant);
                if (!r.divergence.empty()) {
                    ++stats.divergences;
                    printCounterexample(r, guests);
                    return false;
                }
                ModelStep m = modelStep(node.state[g], cmd, mutant);
                if (!m.legal) {
                    continue;
                }
                std::vector<Slot> next = node.state;
                next[g] = m.next;
                u64 code = encode(next);
                if (!seen[code]) {
                    seen[code] = true;
                    ++stats.states;
                    frontier.push_back({std::move(next), std::move(path)});
                }
            }
        }
    }
    return true;
}

/**
 * Phase 2: exhaustive sweep of every command sequence up to @p depth,
 * no dedup. DFS over action prefixes; each full prefix is replayed
 * from scratch (the device cannot be checkpointed).
 */
bool
sweepPaths(int guests, int depth, Mutant mutant, Stats &stats,
           std::vector<Action> &path)
{
    if (static_cast<int>(path.size()) == depth) {
        return true;
    }
    for (int g = 0; g < guests; ++g) {
        for (PspCommand cmd : kCommands) {
            path.push_back({g, cmd});
            ++stats.paths;
            ReplayResult r = replay(path, guests, mutant);
            if (!r.divergence.empty()) {
                ++stats.divergences;
                printCounterexample(r, guests);
                path.pop_back();
                return false;
            }
            if (!sweepPaths(guests, depth, mutant, stats, path)) {
                path.pop_back();
                return false;
            }
            path.pop_back();
        }
    }
    return true;
}

/** One full verification run; returns true when no divergence found. */
bool
runCheck(int guests, int depth, int sweep, Mutant mutant,
         const char *mutant_name)
{
    Stats stats;
    bool clean = bfsReachability(guests, depth, mutant, stats);
    std::vector<Action> path;
    if (clean && sweep > 0) {
        clean = sweepPaths(guests, sweep, mutant, stats, path);
    }
    std::printf("sevf_model: mutant=%s guests=%d depth=%d sweep=%d | "
                "%llu states, %llu edges, %llu sweep paths, "
                "%llu divergence%s\n",
                mutant_name, guests, depth, sweep,
                static_cast<unsigned long long>(stats.states),
                static_cast<unsigned long long>(stats.edges),
                static_cast<unsigned long long>(stats.paths),
                static_cast<unsigned long long>(stats.divergences),
                stats.divergences == 1 ? "" : "s");
    return clean;
}

int
usage(const char *argv0)
{
    std::fprintf(
        stderr,
        "usage: %s [--guests G] [--depth N] [--sweep M]\n"
        "          [--mutant NAME | --all-mutants] [--expect-divergence]\n"
        "          [--list-mutants]\n"
        "Exhaustively model-checks the SNP launch automaton against the\n"
        "live Psp device model and check::LaunchProtocol.\n",
        argv0);
    return 2;
}

} // namespace

int
main(int argc, char **argv)
{
    int guests = 2;
    int depth = 16;
    int sweep = 4;
    bool expect_divergence = false;
    bool all_mutants = false;
    std::string mutant_name = "none";

    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        auto intArg = [&](int &out) {
            if (i + 1 >= argc) {
                return false;
            }
            out = std::atoi(argv[++i]);
            return out > 0;
        };
        if (arg == "--guests") {
            if (!intArg(guests)) {
                return usage(argv[0]);
            }
        } else if (arg == "--depth") {
            if (!intArg(depth)) {
                return usage(argv[0]);
            }
        } else if (arg == "--sweep") {
            if (!intArg(sweep)) {
                return usage(argv[0]);
            }
        } else if (arg == "--mutant") {
            if (i + 1 >= argc) {
                return usage(argv[0]);
            }
            mutant_name = argv[++i];
        } else if (arg == "--all-mutants") {
            all_mutants = true;
        } else if (arg == "--expect-divergence") {
            expect_divergence = true;
        } else if (arg == "--list-mutants") {
            for (const auto &m : kMutants) {
                std::printf("%s\n", m.name);
            }
            return 0;
        } else {
            return usage(argv[0]);
        }
    }
    if (guests > 4 || sweep > 6) {
        std::fprintf(stderr, "sevf_model: bound too large (the sweep is "
                             "O((6*guests)^sweep) device replays)\n");
        return 2;
    }

    if (all_mutants) {
        // Every seeded hole must be caught; a surviving mutant means
        // the checker has a blind spot.
        int survivors = 0;
        for (const auto &m : kMutants) {
            std::printf("sevf_model: seeding mutant '%s'\n", m.name);
            if (runCheck(guests, depth, sweep, m.mutant, m.name)) {
                std::fprintf(stderr,
                             "sevf_model: mutant '%s' SURVIVED — the "
                             "checker missed a seeded protocol hole\n",
                             m.name);
                ++survivors;
            } else {
                std::printf("sevf_model: mutant '%s' caught\n", m.name);
            }
        }
        return survivors == 0 ? 0 : 1;
    }

    Mutant mutant = Mutant::kNone;
    if (mutant_name != "none") {
        bool found = false;
        for (const auto &m : kMutants) {
            if (mutant_name == m.name) {
                mutant = m.mutant;
                found = true;
            }
        }
        if (!found) {
            std::fprintf(stderr, "sevf_model: unknown mutant '%s' "
                                 "(--list-mutants)\n",
                         mutant_name.c_str());
            return 2;
        }
    }

    bool clean = runCheck(guests, depth, sweep, mutant, mutant_name.c_str());
    if (expect_divergence) {
        if (clean) {
            std::fprintf(stderr, "sevf_model: expected a divergence but "
                                 "the check came back clean\n");
            return 1;
        }
        std::printf("sevf_model: divergence found, as expected\n");
        return 0;
    }
    return clean ? 0 : 1;
}
