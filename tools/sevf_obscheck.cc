/**
 * @file
 * sevf_obscheck: validate the observability exports sevf_boot writes.
 *
 *   usage: sevf_obscheck [--trace trace.json] [--metrics metrics.prom]
 *                        [--docs docs/OBSERVABILITY.md]
 *                        [--reliability docs/RELIABILITY.md]
 *                        [--service] [--min-coverage 0.95]
 *
 * Five checks, each on when its input file (or flag) is given:
 *  - trace: parses as JSON (with the repo's own stats/json parser),
 *    every event is structurally a Chrome trace event, and per sim
 *    launch the union of sim.step spans covers >= min-coverage of the
 *    launch's simulated duration.
 *  - metrics: Prometheus text syntax (or a .json snapshot); every
 *    sample belongs to a declared family; the PSP queue-depth and
 *    per-kernel throughput families the paper's figures depend on are
 *    present.
 *  - docs (doc-drift gate): every exported metric family, wall-span
 *    name, and counter-track name appears in docs/OBSERVABILITY.md, so
 *    new instrumentation cannot land undocumented.
 *  - reliability (doc-drift gate for the runbook): every exported
 *    fault_* and retry_* family and reliability span, plus the fixed
 *    degradation-signal names (cache disk errors/quarantine/poisoning,
 *    admission shedding, DRAM mmap fallback), appears in
 *    docs/RELIABILITY.md — a new fault domain cannot land without its
 *    operator runbook entry.
 *  - service (--service, needs --metrics): the multi-tenant serving
 *    families (sevf_service_*, the admission quota/shed counters) are
 *    present in the export — the ci.sh [service] stage runs sevf_serve
 *    and holds its metrics to this contract.
 *
 * Exit 0 when all requested checks pass; 1 with one line per failure.
 */
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "stats/json.h"

using namespace sevf;

namespace {

int g_failures = 0;

void
fail(const std::string &msg)
{
    std::fprintf(stderr, "FAIL: %s\n", msg.c_str());
    ++g_failures;
}

Result<std::string>
readFile(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in) {
        return errInvalidArgument("cannot open " + path);
    }
    std::ostringstream buf;
    buf << in.rdbuf();
    return buf.str();
}

struct Interval {
    double start;
    double end;
};

/** Total length of the union of @p spans. */
double
unionLength(std::vector<Interval> spans)
{
    std::sort(spans.begin(), spans.end(),
              [](const Interval &a, const Interval &b) {
                  return a.start < b.start;
              });
    double covered = 0;
    double cursor = 0; // furthest end swept so far (timestamps are >= 0)
    for (const Interval &s : spans) {
        double from = std::max(s.start, cursor);
        if (s.end > from) {
            covered += s.end - from;
            cursor = s.end;
        }
    }
    return covered;
}

/** Names the trace exports that the docs must mention. */
struct TraceNames {
    std::set<std::string> wall_spans;
    std::set<std::string> counters;
};

/** Validate the Chrome trace file; returns the names it exports. */
TraceNames
checkTrace(const std::string &path, double min_coverage)
{
    TraceNames names;
    Result<std::string> text = readFile(path);
    if (!text.isOk()) {
        fail(text.status().message());
        return names;
    }
    Result<stats::JsonValue> doc = stats::parseJson(*text);
    if (!doc.isOk()) {
        fail("trace: " + doc.status().message());
        return names;
    }
    const stats::JsonValue *events = doc->find("traceEvents");
    if (events == nullptr || !events->isArray()) {
        fail("trace: missing traceEvents array");
        return names;
    }

    // pid -> sim.step intervals (µs) and overall envelope end.
    std::map<double, std::vector<Interval>> sim_spans;
    std::map<double, double> sim_end;
    std::size_t n = 0;
    for (const stats::JsonValue &e : events->asArray()) {
        ++n;
        if (!e.isObject()) {
            fail("trace: event " + std::to_string(n) + " is not an object");
            continue;
        }
        const stats::JsonValue *ph = e.find("ph");
        if (ph == nullptr || !ph->isString()) {
            fail("trace: event " + std::to_string(n) + " lacks \"ph\"");
            continue;
        }
        const std::string &kind = ph->asString();
        if (kind == "M") {
            continue; // metadata: name/pid/tid/args checked by the parse
        }
        const stats::JsonValue *name = e.find("name");
        const stats::JsonValue *pid = e.find("pid");
        const stats::JsonValue *ts = e.find("ts");
        if (name == nullptr || !name->isString() || pid == nullptr ||
            !pid->isNumber() || ts == nullptr || !ts->isNumber()) {
            fail("trace: event " + std::to_string(n) +
                 " lacks name/pid/ts");
            continue;
        }
        if (kind == "C") {
            names.counters.insert(name->asString());
            continue;
        }
        if (kind != "X") {
            fail("trace: event " + std::to_string(n) +
                 " has unexpected ph \"" + kind + "\"");
            continue;
        }
        const stats::JsonValue *dur = e.find("dur");
        const stats::JsonValue *cat = e.find("cat");
        if (dur == nullptr || !dur->isNumber() || cat == nullptr ||
            !cat->isString()) {
            fail("trace: X event " + std::to_string(n) + " lacks dur/cat");
            continue;
        }
        if (cat->asString() == "wall") {
            names.wall_spans.insert(name->asString());
        } else if (cat->asString() == "sim.step") {
            double start = ts->asNumber();
            double end = start + dur->asNumber();
            sim_spans[pid->asNumber()].push_back({start, end});
            double &tail = sim_end[pid->asNumber()];
            tail = std::max(tail, end);
        }
    }

    if (sim_spans.empty()) {
        fail("trace: no sim.step events (simulated clock not traced)");
    }
    for (const auto &[pid, spans] : sim_spans) {
        double total = sim_end[pid];
        if (total <= 0) {
            continue;
        }
        double covered = unionLength(spans);
        double coverage = covered / total;
        std::printf("trace: sim pid %.0f: %.1f%% of %.3f ms covered by "
                    "%zu steps\n",
                    pid, coverage * 100.0, total / 1000.0, spans.size());
        if (coverage < min_coverage) {
            fail("trace: sim pid " + std::to_string(pid) +
                 " coverage below threshold");
        }
    }
    std::printf("trace: %zu events, %zu wall span names, %zu counters\n", n,
                names.wall_spans.size(), names.counters.size());
    return names;
}

/** Family name of a Prometheus sample line ("name{...} value"). */
std::string
sampleFamily(const std::string &line)
{
    std::size_t end = line.find_first_of("{ ");
    std::string name = line.substr(0, end);
    for (const char *suffix : {"_bucket", "_sum", "_count"}) {
        std::size_t len = std::string(suffix).size();
        if (name.size() > len &&
            name.compare(name.size() - len, len, suffix) == 0) {
            return name.substr(0, name.size() - len);
        }
    }
    return name;
}

/** Validate the metrics export; returns the family names it declares. */
std::set<std::string>
checkMetrics(const std::string &path)
{
    std::set<std::string> families;
    Result<std::string> text = readFile(path);
    if (!text.isOk()) {
        fail(text.status().message());
        return families;
    }

    if (path.size() > 5 &&
        path.compare(path.size() - 5, 5, ".json") == 0) {
        Result<stats::JsonValue> doc = stats::parseJson(*text);
        if (!doc.isOk()) {
            fail("metrics: " + doc.status().message());
            return families;
        }
        const stats::JsonValue *metrics = doc->find("metrics");
        if (metrics == nullptr || !metrics->isArray()) {
            fail("metrics: missing metrics array");
            return families;
        }
        for (const stats::JsonValue &m : metrics->asArray()) {
            families.insert(m.stringAt("name"));
        }
    } else {
        std::istringstream in(*text);
        std::string line;
        std::set<std::string> declared;
        std::size_t lineno = 0;
        while (std::getline(in, line)) {
            ++lineno;
            if (line.empty()) {
                continue;
            }
            if (line.rfind("# TYPE ", 0) == 0) {
                std::istringstream fields(line.substr(7));
                std::string name;
                std::string type;
                fields >> name >> type;
                if (type != "counter" && type != "gauge" &&
                    type != "histogram") {
                    fail("metrics: line " + std::to_string(lineno) +
                         ": unknown type " + type);
                }
                declared.insert(name);
                families.insert(name);
                continue;
            }
            if (line[0] == '#') {
                continue; // HELP or comment
            }
            std::string family = sampleFamily(line);
            if (!declared.contains(family)) {
                fail("metrics: line " + std::to_string(lineno) +
                     ": sample for undeclared family " + family);
            }
        }
    }

    // The figures this repo exists to reproduce need these families,
    // and the reliability layer eagerly registers its families so a
    // fault-free boot still exports them zero-valued.
    for (const char *required :
         {"sevf_psp_queue_depth", "sevf_kernel_bytes_total",
          "sevf_kernel_wall_ns_total", "sevf_cache_hits_total",
          "sevf_cache_misses_total", "sevf_cache_inserts_total",
          "sevf_cache_evictions_total", "sevf_cache_bytes",
          "sevf_fault_checks_total", "sevf_fault_injected_total",
          "sevf_retry_attempts_total", "sevf_retry_backoff_ns_total",
          "sevf_retry_exhausted_total", "sevf_cache_disk_errors_total",
          "sevf_cache_disk_quarantined", "sevf_cache_poisoned_total"}) {
        if (!families.contains(required)) {
            fail(std::string("metrics: required family missing: ") +
                 required);
        }
    }
    std::printf("metrics: %zu families\n", families.size());
    return families;
}

/** Doc-drift gate: every exported name must appear in the docs file. */
void
checkDocs(const std::string &path, const TraceNames &trace,
          const std::set<std::string> &families)
{
    Result<std::string> text = readFile(path);
    if (!text.isOk()) {
        fail(text.status().message());
        return;
    }
    std::size_t checked = 0;
    auto require = [&](const std::string &name, const char *what) {
        ++checked;
        if (text->find(name) == std::string::npos) {
            fail("docs: " + std::string(what) + " \"" + name +
                 "\" is not documented in " + path);
        }
    };
    for (const std::string &name : families) {
        require(name, "metric");
    }
    for (const std::string &name : trace.wall_spans) {
        require(name, "span");
    }
    for (const std::string &name : trace.counters) {
        require(name, "counter track");
    }
    std::printf("docs: %zu exported names checked against %s\n", checked,
                path.c_str());
}

/** True when @p name belongs to the reliability surface. */
bool
isReliabilityName(const std::string &name)
{
    static const char *kExact[] = {
        "sevf_cache_disk_errors_total", "sevf_cache_disk_quarantined",
        "sevf_cache_poisoned_total", "sevf_admission_shed_total",
        "sevf_admission_rejected_quota_total",
        "sevf_dram_mmap_fallback_total", "cache.poison_fallback",
    };
    for (const char *exact : kExact) {
        if (name == exact) {
            return true;
        }
    }
    return name.rfind("sevf_fault_", 0) == 0 ||
           name.rfind("sevf_retry_", 0) == 0 ||
           name.rfind("fault.", 0) == 0 || name.rfind("retry.", 0) == 0;
}

/**
 * Runbook-drift gate: every reliability-surface name that the exports
 * carry — plus the fixed signal list an operator greps for even when a
 * particular run never exercised it — must appear in RELIABILITY.md.
 */
void
checkReliability(const std::string &path, const TraceNames &trace,
                 const std::set<std::string> &families)
{
    Result<std::string> text = readFile(path);
    if (!text.isOk()) {
        fail(text.status().message());
        return;
    }
    std::size_t checked = 0;
    auto require = [&](const std::string &name, const char *what) {
        ++checked;
        if (text->find(name) == std::string::npos) {
            fail("reliability: " + std::string(what) + " \"" + name +
                 "\" has no runbook entry in " + path);
        }
    };
    for (const std::string &name : families) {
        if (isReliabilityName(name)) {
            require(name, "metric");
        }
    }
    for (const std::string &name : trace.wall_spans) {
        if (isReliabilityName(name)) {
            require(name, "span");
        }
    }
    // Signals that only appear in exports when their fault actually
    // fired; the runbook must cover them regardless.
    for (const char *always :
         {"sevf_fault_checks_total", "sevf_fault_injected_total",
          "sevf_retry_attempts_total", "sevf_retry_backoff_ns_total",
          "sevf_retry_exhausted_total", "sevf_cache_disk_errors_total",
          "sevf_cache_disk_quarantined", "sevf_cache_poisoned_total",
          "sevf_admission_shed_total",
          "sevf_admission_rejected_quota_total",
          "sevf_dram_mmap_fallback_total",
          "fault.inject", "retry.backoff", "cache.poison_fallback"}) {
        require(always, "signal");
    }
    std::printf("reliability: %zu names checked against %s\n", checked,
                path.c_str());
}

/**
 * Serving-layer gate: a metrics export produced by the launch service
 * (sevf_serve, bench_service_fairness) must carry the per-tenant
 * service families and the admission rejection counters. Families are
 * registered eagerly, so they are present (zero-valued) even when no
 * launch was rejected.
 */
void
checkService(const std::set<std::string> &families)
{
    for (const char *required :
         {"sevf_service_submitted_total", "sevf_service_completed_total",
          "sevf_service_failed_total", "sevf_service_rejected_total",
          "sevf_service_latency_ns", "sevf_admission_rejected_quota_total",
          "sevf_admission_shed_total"}) {
        if (!families.contains(required)) {
            fail(std::string("service: required family missing: ") +
                 required);
        }
    }
    std::printf("service: serving families present\n");
}

} // namespace

int
main(int argc, char **argv)
{
    std::string trace_path;
    std::string metrics_path;
    std::string docs_path;
    std::string reliability_path;
    bool check_service = false;
    double min_coverage = 0.95;
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        auto next = [&]() -> std::string {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "%s needs a value\n", arg.c_str());
                std::exit(2);
            }
            return argv[++i];
        };
        if (arg == "--trace") {
            trace_path = next();
        } else if (arg == "--metrics") {
            metrics_path = next();
        } else if (arg == "--docs") {
            docs_path = next();
        } else if (arg == "--reliability") {
            reliability_path = next();
        } else if (arg == "--service") {
            check_service = true;
        } else if (arg == "--min-coverage") {
            min_coverage = std::atof(next().c_str());
        } else {
            std::fprintf(stderr,
                         "usage: %s [--trace FILE] [--metrics FILE] "
                         "[--docs FILE] [--reliability FILE] "
                         "[--service] [--min-coverage F]\n",
                         argv[0]);
            return 2;
        }
    }
    if (check_service && metrics_path.empty()) {
        std::fprintf(stderr, "--service needs --metrics\n");
        return 2;
    }

    TraceNames trace_names;
    std::set<std::string> families;
    if (!trace_path.empty()) {
        trace_names = checkTrace(trace_path, min_coverage);
    }
    if (!metrics_path.empty()) {
        families = checkMetrics(metrics_path);
    }
    if (check_service) {
        checkService(families);
    }
    if (!docs_path.empty()) {
        checkDocs(docs_path, trace_names, families);
    }
    if (!reliability_path.empty()) {
        checkReliability(reliability_path, trace_names, families);
    }

    if (g_failures != 0) {
        std::fprintf(stderr, "sevf_obscheck: %d failure(s)\n", g_failures);
        return 1;
    }
    std::printf("sevf_obscheck: OK\n");
    return 0;
}
