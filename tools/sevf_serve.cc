/**
 * @file
 * sevf_serve: replay a JSON workload trace against the multi-tenant
 * launch service and report per-tenant latency and fairness.
 *
 *   usage: sevf_serve --trace FILE [--workers N] [--queue-depth N]
 *                     [--shed-on-full] [--time-scale F] [--json]
 *                     [--metrics-out FILE] [--fault-plan SPEC]
 *
 * The trace format is documented in src/service/trace_replay.h (and
 * examples/service_trace.json is a ready-to-run example). --time-scale
 * compresses the recorded arrival offsets (0 = submit back-to-back in
 * trace order). --json emits the machine-readable report on stdout;
 * the default is a human-readable per-tenant table. --metrics-out
 * writes the full metric export (Prometheus text, or JSON snapshot for
 * a .json path), which is what the ci.sh [service] stage feeds to
 * sevf_obscheck --service.
 */
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "fault/fault.h"
#include "obs/export.h"
#include "obs/span.h"
#include "service/launch_service.h"
#include "service/trace_replay.h"
#include "tools/sevf_cli_num.h"

using namespace sevf;

namespace {

int
usage(const char *argv0)
{
    std::fprintf(
        stderr,
        "usage: %s --trace FILE [--workers N] [--queue-depth N]\n"
        "       [--shed-on-full] [--time-scale F] [--json]\n"
        "       [--metrics-out FILE] [--fault-plan SPEC]\n",
        argv0);
    return 2;
}

} // namespace

int
main(int argc, char **argv)
{
    std::string trace_path;
    std::string metrics_path;
    std::string fault_plan;
    service::ServiceConfig config;
    double time_scale = 1.0;
    bool json = false;

    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        auto next = [&]() -> const char * {
            return i + 1 < argc ? argv[++i] : nullptr;
        };
        auto parsed = [&](auto result, auto *out) {
            if (!result.isOk()) {
                std::fprintf(stderr, "%s\n",
                             result.status().message().c_str());
                return false;
            }
            *out = result.take();
            return true;
        };
        const char *value = nullptr;
        if (arg == "--shed-on-full") {
            config.shed_on_full = true;
        } else if (arg == "--json") {
            json = true;
        } else if ((value = next()) == nullptr) {
            std::fprintf(stderr, "%s needs a value\n", arg.c_str());
            return usage(argv[0]);
        } else if (arg == "--trace") {
            trace_path = value;
        } else if (arg == "--metrics-out") {
            metrics_path = value;
        } else if (arg == "--fault-plan") {
            fault_plan = value;
        } else if (arg == "--workers") {
            if (!parsed(tools::parseU32(arg, value), &config.workers)) {
                return usage(argv[0]);
            }
        } else if (arg == "--queue-depth") {
            u64 depth = 0;
            if (!parsed(tools::parseU64(arg, value), &depth) ||
                depth == 0) {
                std::fprintf(stderr,
                             "--queue-depth must be a positive integer\n");
                return usage(argv[0]);
            }
            config.queue_depth = static_cast<std::size_t>(depth);
        } else if (arg == "--time-scale") {
            if (!parsed(tools::parseFraction(arg, value, 1e6),
                        &time_scale)) {
                return usage(argv[0]);
            }
        } else {
            return usage(argv[0]);
        }
    }
    if (trace_path.empty()) {
        return usage(argv[0]);
    }

    std::ifstream in(trace_path, std::ios::binary);
    if (!in) {
        std::fprintf(stderr, "cannot open %s\n", trace_path.c_str());
        return 1;
    }
    std::ostringstream buf;
    buf << in.rdbuf();
    Result<service::WorkloadTrace> trace =
        service::WorkloadTrace::parse(buf.str());
    if (!trace.isOk()) {
        std::fprintf(stderr, "%s: %s\n", trace_path.c_str(),
                     trace.status().message().c_str());
        return 1;
    }

    if (!fault_plan.empty()) {
        Result<fault::FaultPlan> plan = fault::FaultPlan::parse(fault_plan);
        if (!plan.isOk()) {
            std::fprintf(stderr, "%s\n",
                         plan.status().message().c_str());
            return usage(argv[0]);
        }
        fault::FaultInjector::instance().arm(plan.take());
    }

    obs::ScopedEnable obs_on(/*metrics=*/true, /*tracing=*/true);
    core::Platform platform(sim::CostParams::deterministic());
    service::TenantRegistry registry;
    service::LaunchService svc(platform, registry, config);

    Result<service::ReplayReport> report =
        service::replayTrace(svc, *trace, time_scale);
    if (!report.isOk()) {
        std::fprintf(stderr, "replay failed: %s\n",
                     report.status().message().c_str());
        return 1;
    }

    if (!metrics_path.empty()) {
        Status written = obs::writeMetricsFile(metrics_path);
        if (!written.isOk()) {
            std::fprintf(stderr, "%s\n", written.message().c_str());
            return 1;
        }
    }

    if (json) {
        std::printf("%s\n", service::reportToJson(*report).c_str());
        return 0;
    }
    std::printf("replayed %zu events over %.2f ms "
                "(latency fairness %.3f)\n",
                trace->events.size(),
                static_cast<double>(report->wall_ns) / 1e6,
                report->latency_fairness);
    std::printf("shared-PSP model: mean completion %.2f ms, "
                "max %.2f ms\n",
                static_cast<double>(report->des_mean_completion_ns) / 1e6,
                static_cast<double>(report->des_max_completion_ns) / 1e6);
    std::printf("%-12s %9s %9s %9s %9s %9s %12s %12s\n", "tenant", "subm",
                "done", "rej", "fail", "warm", "p50_ms", "p95_ms");
    for (const service::TenantReport &t : report->tenants) {
        std::printf("%-12s %9llu %9llu %9llu %9llu %9llu %12.3f %12.3f\n",
                    t.tenant.c_str(),
                    static_cast<unsigned long long>(t.submitted),
                    static_cast<unsigned long long>(t.completed),
                    static_cast<unsigned long long>(t.rejected),
                    static_cast<unsigned long long>(t.failed),
                    static_cast<unsigned long long>(t.warm_hits),
                    static_cast<double>(t.p50_ns) / 1e6,
                    static_cast<double>(t.p95_ns) / 1e6);
    }
    return 0;
}
