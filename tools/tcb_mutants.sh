#!/bin/sh
# Seeded-mutant check for the root-of-trust audit (sevf_lint --tcb).
#
# Each mutant plants a violation the audit exists to catch, then runs
# the linter over a scratch copy of src/ and fails unless the expected
# rule fires:
#
#   A  the boot verifier grows a call into compress/gzip_lite - the
#      banned-module reachability pass (tcb-reach) must flag the
#      boundary crossing (the paper's verifier must never contain a
#      DEFLATE stack);
#   B  the bzImage parser loses its payload bounds check - the
#      untrusted-input bounds pass (untrusted-bounds) must flag the
#      now-unguarded subspan.
#
# A clean baseline run over the unmutated copy guards against
# environmental noise being mistaken for detection.
#
# usage: tcb_mutants.sh <sevf_lint-binary> <repo-root>
set -eu

lint="$1"
root="$2"

tmp="$(mktemp -d)"
trap 'rm -rf "$tmp"' EXIT INT TERM

run_lint() {
    # shellcheck disable=SC2015
    "$lint" --root "$tmp/src" \
        --secret-sources "$root/tools/secret-sources.txt" \
        --lock-order "$root/tools/lock-order.txt" \
        --tcb-budget "$root/tools/tcb-budget.txt" \
        --jobs 0 >"$tmp/out.txt" 2>&1 && echo 0 || echo $?
}

fresh_copy() {
    rm -rf "$tmp/src"
    cp -r "$root/src" "$tmp/src"
}

expect_rule() {
    name="$1"
    rule="$2"
    status="$(run_lint)"
    if [ "$status" = 0 ]; then
        echo "FAIL mutant $name: lint stayed clean, expected [$rule]" >&2
        exit 1
    fi
    if ! grep -q "\[$rule\]" "$tmp/out.txt"; then
        echo "FAIL mutant $name: expected [$rule], got:" >&2
        cat "$tmp/out.txt" >&2
        exit 1
    fi
    echo "ok   mutant $name caught ([$rule])"
}

# Baseline: the pristine tree must be clean or mutant detection means
# nothing.
fresh_copy
status="$(run_lint)"
if [ "$status" != 0 ]; then
    echo "FAIL baseline: pristine src/ does not lint clean:" >&2
    cat "$tmp/out.txt" >&2
    exit 1
fi
echo "ok   baseline clean"

# Mutant A: verifier reaches the DEFLATE stack.
fresh_copy
sed -i 's/    VerifiedBoot out;/    VerifiedBoot out;\
    compress::GzipLiteCodec gz = compress::GzipLiteCodec();\
    gz.decompress(ByteSpan());/' "$tmp/src/verifier/boot_verifier.cc"
expect_rule A tcb-reach

# Mutant B: bzImage payload bounds check deleted.
fresh_copy
sed -i 's/payload_file_off + info\.payload_length > file\.size()/false/' \
    "$tmp/src/image/bzimage.cc"
expect_rule B untrusted-bounds

echo "tcb_mutants: all mutants caught"
